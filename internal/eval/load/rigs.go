package load

import (
	"fmt"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/tlslite"
	"sgxnet/internal/topo"
	"sgxnet/internal/tor"
	"sgxnet/internal/xcall"
)

// Rigs: the application servers the load engine drives. Each rig wraps
// one of the repo's real deployments — the same protocol code the
// tables measure, not a cost stub — and prices each request by draining
// the deployment's meters with SnapshotAndReset, so request i's service
// tally is exactly the metered work its protocol exchange consumed
// (including any EPC faults or amortized ring drains it triggered).
// Serve is invoked serially by the engine; rigs need no locking.

// Rig is a Server with a lifecycle.
type Rig interface {
	Server
	Close()
}

// --- Tor ---

// TorRig drives circuit GETs through a 3-hop circuit of SGX onion
// routers (1 authority, 2 relays, 1 exit — the smallest full path). The
// per-request tally covers the client's crypto plus all relay-side
// enclave work; with a non-nil xcall config the relays' crossing
// accounting lands on whichever request triggers a ring drain, which is
// exactly the tail-latency artifact the sweep exists to expose.
type TorRig struct {
	tn     *tor.TorNet
	circ   *tor.Circuit
	meters []*core.Meter
}

// NewTorRig deploys the network and builds one circuit. Setup costs
// (consensus, handshakes, attestation) are drained before first Serve.
func NewTorRig(seed int64, xc *xcall.Config) (*TorRig, error) {
	tn, err := tor.Deploy(tor.NetworkConfig{
		Mode: tor.ModeSGXORs, Authorities: 1, Relays: 2, Exits: 1, Seed: seed, Xcall: xc,
	})
	if err != nil {
		return nil, err
	}
	c, err := tn.NewClient("load-client", 11)
	if err != nil {
		return nil, err
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		return nil, err
	}
	path, err := c.PickPath(consensus, 3)
	if err != nil {
		return nil, err
	}
	circ, err := c.BuildCircuit(path)
	if err != nil {
		return nil, err
	}
	r := &TorRig{tn: tn, circ: circ, meters: []*core.Meter{c.Meter()}}
	for _, o := range tn.ORs {
		r.meters = append(r.meters, o.Enclave().Meter())
	}
	for _, m := range r.meters {
		m.Reset()
	}
	return r, nil
}

// Serve performs one end-to-end circuit GET and verifies the reply.
func (r *TorRig) Serve(i int) (core.Tally, error) {
	var t core.Tally
	req := fmt.Sprintf("req-%d", i)
	resp, err := r.circ.Get(tor.WebHost+"|"+tor.WebService, []byte(req))
	if err != nil {
		return t, err
	}
	if string(resp) != "content:"+req {
		return t, fmt.Errorf("load: tor reply %d: %q", i, resp)
	}
	for _, m := range r.meters {
		t = t.Add(m.SnapshotAndReset())
	}
	return t, nil
}

// Close drains any residual ring accounting and tears the circuit down.
func (r *TorRig) Close() {
	_ = r.tn.FlushXcall()
	r.circ.Close()
}

// --- TLS ---

// TLSRigConfig shapes the record-engine rig's composition axes.
type TLSRigConfig struct {
	// Xcall, when non-nil, routes the engine's crossings through rings.
	Xcall *xcall.Config
	// EPCRatio > 0 puts the engine on a deliberately small EPC behind a
	// clock-policy pager; each request touches record-buffer pages from
	// a working set of ratio × pageable-budget pages, so ratios > 1.0
	// force steady-state EWB/ELDU traffic onto the request path.
	EPCRatio float64
	// Antagonist additionally launches an EPC antagonist enclave on the
	// same platform (requires EPCRatio > 0); fetch it with Antagonist.
	Antagonist bool
}

// tlsEPCFrames is the paged rig's whole EPC: small enough that realistic
// working-set ratios page, large enough to launch two enclaves.
const tlsEPCFrames = 48

// tlsPagesPerRequest is how many working-set pages one record exchange
// touches (record buffer in, record buffer out, key schedule, scratch).
const tlsPagesPerRequest = 4

// TLSRig drives seal+open record exchanges through an enclave-hosted
// TLS record codec, optionally behind a paged EPC.
type TLSRig struct {
	eng    *tlslite.RecordEngine
	pager  *core.Pager // nil when EPCRatio == 0
	ws     int         // working-set pages
	pos    int         // cyclic working-set cursor
	seq    uint64
	antago *epcAntagonist
}

// NewTLSRig builds the engine (and, if configured, the pager and the
// co-located EPC antagonist) on a platform seeded by name.
func NewTLSRig(name string, cfg TLSRigConfig) (*TLSRig, error) {
	pcfg := core.PlatformConfig{Seed: []byte("load-tls/" + name)}
	if cfg.EPCRatio > 0 {
		pcfg.EPCFrames = tlsEPCFrames
	}
	plat, err := core.NewPlatform("load-tls", pcfg)
	if err != nil {
		return nil, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	var keys tlslite.Keys
	for i := range keys.EncC2S {
		keys.EncC2S[i] = byte(i)
		keys.EncS2C[i] = byte(i + 16)
	}
	for i := range keys.MacC2S {
		keys.MacC2S[i] = byte(i + 32)
		keys.MacS2C[i] = byte(i + 64)
	}
	eng, err := tlslite.NewRecordEngine(plat, signer, keys, cfg.Xcall)
	if err != nil {
		return nil, err
	}
	r := &TLSRig{eng: eng}
	if cfg.EPCRatio > 0 {
		var anEnc *core.Enclave
		if cfg.Antagonist {
			// Launch before sizing the budget so both tenants' enclave
			// infrastructure is already paid for.
			if anEnc, err = plat.Launch(antagonistProgram("epc"), signer); err != nil {
				return nil, err
			}
		}
		budget := plat.EPC().FreeCount()
		r.pager = core.NewPager(plat.EPC(), core.NewClockPolicy())
		r.ws = int(cfg.EPCRatio * float64(budget))
		if r.ws < 1 {
			r.ws = 1
		}
		if anEnc != nil {
			r.antago = &epcAntagonist{enc: anEnc, pager: r.pager, span: budget}
			anEnc.Meter().Reset()
		}
	}
	eng.Meter().Reset()
	return r, nil
}

// Antagonist returns the co-located EPC antagonist rig (nil unless
// configured). It shares the victim's pager, so its page touches evict
// the victim's working set.
func (r *TLSRig) Antagonist() Rig { return rigOrNil(r.antago) }

// SetSeries wires the rig's pager (when paged) into a windowed-metrics
// probe stamping from the given virtual clock — typically the load
// engine's shared series.Clock, so fault/evict samples land in the
// window of the request that triggered them. No-op for an unpaged rig;
// call before the first Serve.
func (r *TLSRig) SetSeries(sp core.SampleProbe, clock func() uint64) {
	if r.pager != nil {
		r.pager.SetSeries(sp, clock)
	}
}

// Serve seals and opens one record (touching its working-set pages
// first when paged).
func (r *TLSRig) Serve(i int) (core.Tally, error) {
	var t core.Tally
	if r.pager != nil {
		for k := 0; k < tlsPagesPerRequest; k++ {
			addr := uint64(r.pos%r.ws) * core.PageSize
			r.pos++
			if _, err := r.pager.Touch(r.eng.Meter(), r.eng.Enclave().ID(), addr); err != nil {
				return t, err
			}
		}
	}
	seq := r.seq
	r.seq++
	rec, err := r.eng.Seal(tlslite.ClientToServer, seq, []byte("application data"))
	if err != nil {
		return t, err
	}
	if _, err := r.eng.Open(tlslite.ClientToServer, seq, rec); err != nil {
		return t, err
	}
	return r.eng.Meter().SnapshotAndReset(), nil
}

// Close is a no-op (the platform is garbage).
func (r *TLSRig) Close() {}

// --- SDN ---

// sdnASes is the SDN rig's deployment size.
const sdnASes = 6

// SDNRig drives route fetches against a live SGX SDN deployment: one
// enclave-hosted controller, sdnASes attested AS-local controllers with
// uploaded policies and computed routes. Serve(i) is AS (i mod n)
// re-fetching its routes — the steady-state "data plane asks the
// control plane" exchange.
type SDNRig struct {
	ctl    *sdnctl.Controller
	locals []*sdnctl.ASLocal
	meters []*core.Meter
}

// NewSDNRig deploys, attests, uploads, and computes, then drains every
// meter so Serve tallies are pure steady-state fetch work.
func NewSDNRig() (*SDNRig, error) {
	tp, err := topo.Random(topo.Config{N: sdnASes, Seed: 42, PrefJitter: true})
	if err != nil {
		return nil, err
	}
	n := tp.N()
	net := netsim.New()
	arch, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	newHost := func(name string) (*netsim.SimHost, error) {
		plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 4096, ArchSigner: arch.MRSigner()})
		if err != nil {
			return nil, err
		}
		return net.AddHostWithPlatform(name, plat)
	}
	ctlHost, err := newHost("controller")
	if err != nil {
		return nil, err
	}
	if _, err := attest.NewAgent(ctlHost, arch); err != nil {
		return nil, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	ctl, err := sdnctl.LaunchController(ctlHost, signer, n)
	if err != nil {
		return nil, err
	}
	r := &SDNRig{ctl: ctl}
	ctlMR := sdnctl.ControllerMeasurement(n)
	policies := sdnctl.PoliciesFromTopology(tp)
	for a := 0; a < n; a++ {
		host, err := newHost(fmt.Sprintf("as%d", a))
		if err != nil {
			r.Close()
			return nil, err
		}
		asl, err := sdnctl.LaunchASLocal(host, signer, policies[a], ctlMR)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.locals = append(r.locals, asl)
	}
	for _, asl := range r.locals {
		if err := asl.Connect("controller"); err != nil {
			r.Close()
			return nil, err
		}
		if err := asl.Upload(); err != nil {
			r.Close()
			return nil, err
		}
	}
	if err := ctl.Compute(); err != nil {
		r.Close()
		return nil, err
	}
	r.meters = []*core.Meter{ctl.Enclave.Meter()}
	for _, asl := range r.locals {
		r.meters = append(r.meters, asl.Enclave.Meter())
	}
	for _, m := range r.meters {
		m.Reset()
	}
	return r, nil
}

// Serve has AS (i mod n) fetch its computed routes from the controller.
func (r *SDNRig) Serve(i int) (core.Tally, error) {
	var t core.Tally
	if err := r.locals[i%len(r.locals)].Fetch(); err != nil {
		return t, err
	}
	for _, m := range r.meters {
		t = t.Add(m.SnapshotAndReset())
	}
	return t, nil
}

// Close shuts the deployment down.
func (r *SDNRig) Close() {
	for _, asl := range r.locals {
		asl.Close()
	}
	if r.ctl != nil {
		r.ctl.Close()
	}
}

// --- Antagonists ---

// Antagonist tenants, after Stress-SGX: co-scheduled workloads that
// stress one resource dimension each, so a sweep can attribute a
// victim's tail inflation to the specific contended resource. They run
// as a second stream through the same FIFO engine, so their service
// time delays the victim's queue exactly as a co-tenant on the modeled
// serial platform would.

// Per-op weights for the synthetic antagonists, tuned to the same order
// of magnitude as one victim request so a 25%-utilization antagonist
// stream visibly reshapes the victim's tail without starving it.
const (
	cpuAntagonistCompute = 400_000 // normal instructions per op
	crossAntagonistCalls = 16      // sync enclave crossings per op
	epcAntagonistPages   = 8       // shared-pager page touches per op
)

// antagonistProgram is the antagonists' enclave: a compute op and a
// no-op entry point (the crossing antagonist's empty call).
func antagonistProgram(kind string) *core.Program {
	return &core.Program{
		Name:    "load-antagonist-" + kind,
		Version: "1",
		Handlers: map[string]core.Handler{
			"op": func(env *core.Env, arg []byte) ([]byte, error) {
				env.ChargeNormal(cpuAntagonistCompute)
				return nil, nil
			},
			"noop": func(env *core.Env, arg []byte) ([]byte, error) {
				return nil, nil
			},
		},
	}
}

// enclaveAntagonist is a CPU- or crossing-pressure tenant on its own
// platform.
type enclaveAntagonist struct {
	enc   *core.Enclave
	calls int    // enclave calls per op
	entry string // handler name
}

// NewCPUAntagonist burns enclave compute: one call charging
// cpuAntagonistCompute normal instructions per op.
func NewCPUAntagonist(name string) (Rig, error) {
	return newEnclaveAntagonist(name, "cpu", 1, "op")
}

// NewCrossingAntagonist burns enclave transitions: crossAntagonistCalls
// empty synchronous calls per op, each paying the full EENTER/EEXIT
// toll.
func NewCrossingAntagonist(name string) (Rig, error) {
	return newEnclaveAntagonist(name, "crossing", crossAntagonistCalls, "noop")
}

func newEnclaveAntagonist(name, kind string, calls int, entry string) (Rig, error) {
	plat, err := core.NewPlatform("load-antagonist", core.PlatformConfig{Seed: []byte("load-antagonist/" + name)})
	if err != nil {
		return nil, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	enc, err := plat.Launch(antagonistProgram(kind), signer)
	if err != nil {
		return nil, err
	}
	enc.Meter().Reset()
	return &enclaveAntagonist{enc: enc, calls: calls, entry: entry}, nil
}

func (a *enclaveAntagonist) Serve(i int) (core.Tally, error) {
	var t core.Tally
	for k := 0; k < a.calls; k++ {
		if _, err := a.enc.Call(a.entry, nil); err != nil {
			return t, err
		}
	}
	return a.enc.Meter().SnapshotAndReset(), nil
}

func (a *enclaveAntagonist) Close() {}

// epcAntagonist scans the victim platform's whole pageable budget
// through the shared pager, evicting the victim's pages as it goes.
type epcAntagonist struct {
	enc   *core.Enclave
	pager *core.Pager
	span  int // pages scanned cyclically: the whole pageable budget
	pos   int
}

func (a *epcAntagonist) Serve(i int) (core.Tally, error) {
	var t core.Tally
	for k := 0; k < epcAntagonistPages; k++ {
		addr := uint64(a.pos%a.span) * core.PageSize
		a.pos++
		if _, err := a.pager.Touch(a.enc.Meter(), a.enc.ID(), addr); err != nil {
			return t, err
		}
	}
	if _, err := a.enc.Call("noop", nil); err != nil {
		return t, err
	}
	return a.enc.Meter().SnapshotAndReset(), nil
}

func (a *epcAntagonist) Close() {}

// rigOrNil converts a typed-nil antagonist to an untyped nil Rig.
func rigOrNil(a *epcAntagonist) Rig {
	if a == nil {
		return nil
	}
	return a
}
