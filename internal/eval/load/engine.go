package load

import (
	"fmt"
	"sort"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

// Server is one request sink a stream drives. Serve processes logical
// request i and returns the instruction tally the request consumed —
// measured, not estimated, typically via Meter.SnapshotAndReset drains
// around the rig's real protocol calls. Serve is invoked serially in
// virtual-time order; implementations need no locking.
type Server interface {
	Serve(i int) (core.Tally, error)
}

// ServerFunc adapts a function to the Server interface.
type ServerFunc func(i int) (core.Tally, error)

// Serve calls f.
func (f ServerFunc) Serve(i int) (core.Tally, error) { return f(i) }

// StreamConfig is one open-loop request stream: an arrival schedule, a
// server to drive, and a latency SLO in modeled cycles (0 disables
// violation counting for the stream).
type StreamConfig struct {
	Name string
	Spec ArrivalSpec
	Srv  Server
	SLO  uint64
}

// StreamResult is the per-stream reduction.
type StreamResult struct {
	Name       string
	Spec       ArrivalSpec
	Hist       *Hist  // per-request latency (wait + service), cycles
	Violations uint64 // latencies > SLO (0 if SLO disabled)
	SLO        uint64
	Service    core.Tally // summed Serve tallies
}

// Result is one engine run: per-stream latency distributions plus the
// combined view across streams.
type Result struct {
	Streams  []StreamResult
	Combined *Hist      // merge of every stream's Hist
	Makespan uint64     // virtual finish time of the last request
	Service  core.Tally // summed Serve tallies across streams
}

// arrival is one scheduled request, tagged with its stream.
type arrival struct {
	t      uint64
	stream int
	idx    int // per-stream request index
}

// Run executes the streams against a single FIFO virtual server on the
// modeled cycle clock: requests start at max(arrival, server-idle),
// latency = (start − arrival) + service. Everything is deterministic —
// schedules come from seeded specs, service tallies from the metered
// rigs — so identical inputs give identical Results and identical
// per-request spans on tr's track. Ties (equal arrival times across
// streams) break by (stream index, request index).
//
// The single-server FIFO discipline is deliberate: the modeled platform
// executes enclave transitions serially per core, and one shared queue
// is exactly the regime where EPC paging and ring-drain spikes surface
// in the tail, which is what the sweep exists to show.
func Run(tr *obs.Trace, trackName string, streams []StreamConfig) (*Result, error) {
	return RunSampled(tr, trackName, nil, nil, streams)
}

// RunSampled is Run with the windowed-metrics layer attached: per-stream
// arrivals/done/viol counters and queue-depth/in-flight gauges sampled
// on the engine's virtual clock, bucketed by the sampler's set. clk,
// when non-nil, is advanced to each request's start and finish so rig
// internals wired to the same clock (a pager, an xcall ring) stamp
// their samples inside the request window that caused them. Both sm
// and clk may be nil (independently); determinism is unchanged — the
// samples are pure functions of the schedule and the tallies.
func RunSampled(tr *obs.Trace, trackName string, sm *series.Sampler, clk *series.Clock, streams []StreamConfig) (*Result, error) {
	var sched []arrival
	spanNames := make([]string, len(streams))
	for si, st := range streams {
		times, err := st.Spec.Times()
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", st.Name, err)
		}
		for i, t := range times {
			sched = append(sched, arrival{t: t, stream: si, idx: i})
		}
		spanNames[si] = "req." + st.Name
	}
	sort.SliceStable(sched, func(i, j int) bool {
		if sched[i].t != sched[j].t {
			return sched[i].t < sched[j].t
		}
		if sched[i].stream != sched[j].stream {
			return sched[i].stream < sched[j].stream
		}
		return sched[i].idx < sched[j].idx
	})

	res := &Result{Combined: NewHist()}
	res.Streams = make([]StreamResult, len(streams))
	arrivalNames := make([]string, len(streams))
	doneNames := make([]string, len(streams))
	violNames := make([]string, len(streams))
	for si, st := range streams {
		res.Streams[si] = StreamResult{Name: st.Name, Spec: st.Spec, Hist: NewHist(), SLO: st.SLO}
		arrivalNames[si] = "arrivals." + st.Name
		doneNames[si] = "done." + st.Name
		violNames[si] = "viol." + st.Name
	}

	var clock uint64 // virtual time the server frees up
	finishes := make([]uint64, 0, len(sched))
	donePtr := 0 // finishes[:donePtr] completed before the current arrival
	for i, a := range sched {
		start := clock
		if a.t > start {
			start = a.t
		}
		if sm != nil {
			// In-flight = arrived but unfinished at this arrival instant
			// (including this request); finishes are monotone under FIFO,
			// so a moving pointer suffices. Queue depth excludes the one
			// in service.
			for donePtr < i && finishes[donePtr] <= a.t {
				donePtr++
			}
			inflight := uint64(i - donePtr + 1)
			sm.GaugeAt("queue.inflight", a.t, inflight)
			sm.GaugeAt("queue.depth", a.t, inflight-1)
			sm.CountAt(arrivalNames[a.stream], a.t, 1)
		}
		clk.Advance(start)
		tally, err := streams[a.stream].Srv.Serve(a.idx)
		if err != nil {
			return nil, fmt.Errorf("stream %s request %d: %w", streams[a.stream].Name, a.idx, err)
		}
		svc := tally.Cycles()
		finish := start + svc
		clock = finish
		clk.Advance(finish)
		finishes = append(finishes, finish)
		lat := finish - a.t

		sr := &res.Streams[a.stream]
		sr.Hist.Add(lat)
		sr.Service = sr.Service.Add(tally)
		violated := sr.SLO > 0 && lat > sr.SLO
		if violated {
			sr.Violations++
		}
		if sm != nil {
			sm.CountAt(doneNames[a.stream], finish, 1)
			if violated {
				sm.CountAt(violNames[a.stream], finish, 1)
			}
		}
		res.Service = res.Service.Add(tally)
		tr.RecordSpanAt(trackName, spanNames[a.stream], start, tally)
	}
	res.Makespan = clock
	for _, sr := range res.Streams {
		res.Combined.Merge(sr.Hist)
	}
	return res, nil
}
