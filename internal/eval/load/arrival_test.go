package load

import (
	"math"
	"strings"
	"testing"
)

func TestArrivalSpecRoundTrip(t *testing.T) {
	specs := []ArrivalSpec{
		{Kind: Poisson, Rate: 33.5, N: 600, Seed: 7},
		{Kind: Poisson, Rate: 0.125, N: 1, Seed: 0},
		{Kind: Bursty, Rate: 2, N: 64, Seed: 9, Period: 4096, Duty: 0.25},
		{Kind: Bursty, Rate: 1e6, N: MaxRequests, Seed: ^uint64(0), Period: MaxPeriod, Duty: 1},
		{Kind: Fixed, Rate: 1000, N: 128},
	}
	for _, s := range specs {
		got, err := ParseArrivalSpec(s.String())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got != s {
			t.Errorf("round trip: %s -> %+v want %+v", s, got, s)
		}
	}
}

func TestArrivalSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"poisson",                              // no fields
		"warp:rate=1,n=4",                      // unknown kind
		"poisson:rate=1",                       // missing n
		"poisson:n=4,seed=1",                   // missing rate
		"poisson:rate=1,n=4,rate=2",            // duplicate key
		"poisson:rate=1,n=4,duty=0.5",          // key not allowed for kind
		"fixed:rate=1,n=4,seed=9",              // fixed takes no seed
		"poisson:rate=0,n=4",                   // zero rate
		"poisson:rate=-3,n=4",                  // negative rate
		"poisson:rate=1e308,n=4",               // overflow rate
		"poisson:rate=NaN,n=4",                 // NaN
		"poisson:rate=+Inf,n=4",                // Inf
		"poisson:rate=1,n=-1",                  // negative n
		"poisson:rate=1,n=999999999",           // n past MaxRequests
		"bursty:rate=1,n=4,period=0,duty=0.5",  // zero period
		"bursty:rate=1,n=4,period=10,duty=0",   // duty under MinDuty
		"bursty:rate=1,n=4,period=10,duty=NaN", // NaN duty
		"bursty:rate=1,n=4,period=10",          // missing duty
		"poisson:rate=1,n=4,junk",              // field without '='
	}
	for _, in := range bad {
		if _, err := ParseArrivalSpec(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestTimesDeterministicMonotone(t *testing.T) {
	specs := []ArrivalSpec{
		{Kind: Poisson, Rate: 40, N: 500, Seed: 3},
		{Kind: Bursty, Rate: 40, N: 500, Seed: 3, Period: 200_000, Duty: 0.2},
		{Kind: Fixed, Rate: 40, N: 500},
	}
	for _, s := range specs {
		a, err := s.Times()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, _ := s.Times()
		if len(a) != s.N || len(b) != s.N {
			t.Fatalf("%s: got %d/%d times, want %d", s, len(a), len(b), s.N)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d: %d vs %d", s, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: non-monotone at %d: %d < %d", s, i, a[i], a[i-1])
			}
			if a[i] > MaxScheduleCycles {
				t.Fatalf("%s: time %d exceeds ceiling", s, a[i])
			}
		}
	}
}

// TestTimesMeanRate: the empirical rate of a long Poisson schedule must
// land near the spec's rate (law of large numbers, seeded so no flake).
func TestTimesMeanRate(t *testing.T) {
	s := ArrivalSpec{Kind: Poisson, Rate: 10, N: 20000, Seed: 5}
	times, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	last := float64(times[len(times)-1])
	rate := float64(s.N) * 1e6 / last
	if rate < 9.5 || rate > 10.5 {
		t.Fatalf("empirical rate %.3f, want ~10", rate)
	}
	// Bursty with the same rate must also average out to ~Rate.
	b := ArrivalSpec{Kind: Bursty, Rate: 10, N: 20000, Seed: 5, Period: 1 << 20, Duty: 0.25}
	bt, err := b.Times()
	if err != nil {
		t.Fatal(err)
	}
	brate := float64(b.N) * 1e6 / float64(bt[len(bt)-1])
	if brate < 9 || brate > 11 {
		t.Fatalf("bursty empirical rate %.3f, want ~10", brate)
	}
}

func TestTimesFixedSpacing(t *testing.T) {
	s := ArrivalSpec{Kind: Fixed, Rate: 100, N: 10} // mean 10_000 cycles
	times, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if want := uint64(10_000 * (i + 1)); ts != want {
			t.Fatalf("fixed time %d: %d want %d", i, ts, want)
		}
	}
}

// TestBurstyWithinOnWindows: every bursty arrival must land inside the
// on-window of its period.
func TestBurstyWithinOnWindows(t *testing.T) {
	s := ArrivalSpec{Kind: Bursty, Rate: 50, N: 2000, Seed: 11, Period: 100_000, Duty: 0.25}
	times, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	onLen := s.Duty * float64(s.Period)
	for i, ts := range times {
		off := math.Mod(float64(ts), float64(s.Period))
		if off > onLen+1 { // +1 for float->uint truncation slack
			t.Fatalf("arrival %d at %d: offset %.0f outside on-window %.0f", i, ts, off, onLen)
		}
	}
}

func TestKindString(t *testing.T) {
	if Poisson.String() != "poisson" || Bursty.String() != "bursty" || Fixed.String() != "fixed" {
		t.Fatal("kind names changed")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Fatal("unknown kind should render as Kind(n)")
	}
}
