package load

import (
	"sort"
	"testing"
)

// oracle is the naive reference: nearest-rank over a full sort.
func oracle(samples []uint64, q float64) uint64 {
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := 1
	if q > 0 {
		r := q * float64(len(sorted))
		rank = int(r)
		if float64(rank) < r {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
	}
	return sorted[rank-1]
}

// genSamples draws n seeded values spanning several orders of magnitude
// (latencies from tens to billions of cycles), plus edge values.
func genSamples(seed uint64, n int) []uint64 {
	rng := splitmix{s: seed}
	out := make([]uint64, n)
	for i := range out {
		v := rng.next()
		// Vary magnitude: shift by 0..53 bits so small and huge values mix.
		out[i] = v >> (rng.next() % 54)
	}
	if n > 0 {
		out[0] = 0
	}
	if n > 1 {
		out[1] = 1
	}
	return out
}

var quantiles = []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}

// TestHistExactOracle: below ExactThreshold the histogram must agree
// with the sort-based oracle exactly, for every quantile.
func TestHistExactOracle(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, ExactThreshold} {
		samples := genSamples(uint64(n), n)
		h := NewHist()
		for _, v := range samples {
			h.Add(v)
		}
		if h.Bucketed() {
			t.Fatalf("n=%d: unexpectedly bucketed", n)
		}
		for _, q := range quantiles {
			if got, want := h.Quantile(q), oracle(samples, q); got != want {
				t.Errorf("n=%d q=%v: got %d want %d", n, q, got, want)
			}
		}
	}
}

// TestHistBucketedBoundedError: above the threshold every quantile must
// stay within the documented relative error of the oracle (and max must
// stay exact).
func TestHistBucketedBoundedError(t *testing.T) {
	for _, n := range []int{ExactThreshold + 1, 2000, 10000} {
		samples := genSamples(uint64(n), n)
		h := NewHist()
		var max uint64
		for _, v := range samples {
			h.Add(v)
			if v > max {
				max = v
			}
		}
		if !h.Bucketed() {
			t.Fatalf("n=%d: not bucketed", n)
		}
		if h.Max() != max {
			t.Fatalf("n=%d: max %d want %d", n, h.Max(), max)
		}
		for _, q := range quantiles {
			got, want := h.Quantile(q), oracle(samples, q)
			// rep error is <= want/64; allow want/32 for slack at bucket edges.
			tol := want / 32
			if tol < 1 {
				tol = 1
			}
			diff := got - want
			if got < want {
				diff = want - got
			}
			if diff > tol {
				t.Errorf("n=%d q=%v: got %d want %d (tol %d)", n, q, got, want, tol)
			}
		}
	}
}

// TestHistMergeOrderInvariance: any partition of a sample multiset,
// merged in any order, must reduce to identical quantiles — in both the
// exact and the bucketed regime.
func TestHistMergeOrderInvariance(t *testing.T) {
	for _, total := range []int{60, ExactThreshold, ExactThreshold + 100, 3000} {
		samples := genSamples(uint64(total)*7, total)
		// Partition into k parts three different ways, merge forward,
		// backward, and pairwise-tree; all must agree with the flat fill.
		flat := NewHist()
		for _, v := range samples {
			flat.Add(v)
		}
		for _, k := range []int{2, 3, 7} {
			parts := make([]*Hist, k)
			for i := range parts {
				parts[i] = NewHist()
			}
			for i, v := range samples {
				parts[i%k].Add(v)
			}
			fwd := NewHist()
			for _, p := range parts {
				fwd.Merge(p)
			}
			bwd := NewHist()
			for i := k - 1; i >= 0; i-- {
				bwd.Merge(parts[i])
			}
			for _, q := range quantiles {
				want := flat.Quantile(q)
				if got := fwd.Quantile(q); got != want {
					t.Errorf("total=%d k=%d q=%v fwd: got %d want %d", total, k, q, got, want)
				}
				if got := bwd.Quantile(q); got != want {
					t.Errorf("total=%d k=%d q=%v bwd: got %d want %d", total, k, q, got, want)
				}
			}
			if fwd.Count() != flat.Count() || fwd.Sum() != flat.Sum() || fwd.Max() != flat.Max() {
				t.Errorf("total=%d k=%d: count/sum/max diverge", total, k)
			}
		}
	}
}

// TestHistMergeDoesNotMutateSource: merging must leave the source
// usable and unchanged.
func TestHistMergeDoesNotMutateSource(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := uint64(0); i < 400; i++ {
		a.Add(i)
		b.Add(i * 1000)
	}
	before := make([]uint64, len(quantiles))
	for i, q := range quantiles {
		before[i] = b.Quantile(q)
	}
	a.Merge(b) // combined count 800 > threshold: a spills, b must not
	if b.Bucketed() {
		t.Fatal("merge bucketized the source")
	}
	for i, q := range quantiles {
		if got := b.Quantile(q); got != before[i] {
			t.Errorf("q=%v: source quantile changed %d -> %d", q, before[i], got)
		}
	}
}

// TestHistMonotoneQuantiles: q1 <= q2 implies Quantile(q1) <= Quantile(q2),
// in both regimes.
func TestHistMonotoneQuantiles(t *testing.T) {
	for _, n := range []int{50, 5000} {
		h := NewHist()
		for _, v := range genSamples(uint64(n)*13, n) {
			h.Add(v)
		}
		prev := uint64(0)
		for q := 0.0; q <= 1.0; q += 0.001 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("n=%d: quantile regressed at q=%v: %d < %d", n, q, v, prev)
			}
			prev = v
		}
	}
}

// TestBucketMapping: the bucket index must be monotone in v and the
// representative within 1/64 relative error, across the whole range.
func TestBucketMapping(t *testing.T) {
	rng := splitmix{s: 99}
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = idx
	}
	for i := 0; i < 100000; i++ {
		v := rng.next() >> (rng.next() % 64)
		idx := bucketOf(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		rep := bucketRep(idx)
		if bucketOf(rep) != idx {
			t.Fatalf("rep %d of bucket %d maps to bucket %d", rep, idx, bucketOf(rep))
		}
		if v >= 64 {
			diff := int64(rep) - int64(v)
			if diff < 0 {
				diff = -diff
			}
			if uint64(diff) > v/64 {
				t.Fatalf("rep error too large: v=%d rep=%d", v, rep)
			}
		} else if rep != v {
			t.Fatalf("small value not exact: v=%d rep=%d", v, rep)
		}
	}
}

// TestHistEmptyAndSaturation: empty histograms return 0; the saturating
// sum pegs at max instead of wrapping.
func TestHistEmptyAndSaturation(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Add(^uint64(0))
	h.Add(^uint64(0))
	if h.Sum() != ^uint64(0) {
		t.Fatalf("sum did not saturate: %d", h.Sum())
	}
}
