package load

import (
	"errors"
	"reflect"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
)

// chargeServer returns a server whose every request burns a fixed
// number of normal instructions on a private meter — so service time is
// the cost model's honest output, not a literal.
func chargeServer(normal uint64) Server {
	m := core.NewMeter()
	return ServerFunc(func(i int) (core.Tally, error) {
		m.ChargeNormal(normal)
		return m.SnapshotAndReset(), nil
	})
}

// TestRunQueueing checks the FIFO math by hand. Fixed arrivals every
// 10 cycles, service 18 cycles (10 normal instructions x 1.8): each
// request waits 8 cycles longer than the one before.
func TestRunQueueing(t *testing.T) {
	streams := []StreamConfig{{
		Name: "stub",
		Spec: ArrivalSpec{Kind: Fixed, Rate: 100_000, N: 4}, // every 10 cycles
		Srv:  chargeServer(10),                              // 18 cycles
		SLO:  30,
	}}
	res, err := Run(nil, "t", streams)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals 10,20,30,40; finishes 28,46,64,82; latencies 18,26,34,42.
	want := []uint64{18, 26, 34, 42}
	h := res.Streams[0].Hist
	if h.Count() != 4 || h.Max() != 42 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	for i, q := range []float64{0.25, 0.5, 0.75, 1} {
		if got := h.Quantile(q); got != want[i] {
			t.Errorf("q=%v: got %d want %d", q, got, want[i])
		}
	}
	if res.Streams[0].Violations != 2 { // 34 and 42 exceed SLO 30
		t.Errorf("violations = %d, want 2", res.Streams[0].Violations)
	}
	if res.Makespan != 82 {
		t.Errorf("makespan = %d, want 82", res.Makespan)
	}
	if res.Service.Cycles() != 4*18 {
		t.Errorf("service = %d cycles, want 72", res.Service.Cycles())
	}
}

// TestRunIdleServer: arrivals slower than service mean zero queueing —
// latency equals service time exactly.
func TestRunIdleServer(t *testing.T) {
	streams := []StreamConfig{{
		Name: "idle",
		Spec: ArrivalSpec{Kind: Fixed, Rate: 10, N: 8}, // every 100k cycles
		Srv:  chargeServer(10),                         // 18 cycles
	}}
	res, err := Run(nil, "t", streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined.Max() != 18 || res.Combined.Quantile(0) != 18 {
		t.Fatalf("idle latency spread: min=%d max=%d, want all 18",
			res.Combined.Quantile(0), res.Combined.Max())
	}
	if res.Streams[0].Violations != 0 {
		t.Fatal("violations counted with SLO disabled")
	}
}

// TestRunTwoStreamsInterleave: a second stream shares the FIFO server;
// ties break by stream order and the combined histogram is the merge.
func TestRunTwoStreamsInterleave(t *testing.T) {
	spec := ArrivalSpec{Kind: Fixed, Rate: 100_000, N: 3} // both at 10,20,30
	streams := []StreamConfig{
		{Name: "a", Spec: spec, Srv: chargeServer(10)},
		{Name: "b", Spec: spec, Srv: chargeServer(10)},
	}
	res, err := Run(nil, "t", streams)
	if err != nil {
		t.Fatal(err)
	}
	// Service order: a0,b0,a1,b1,a2,b2 each 18 cycles from t=10.
	// Finishes 28,46,64,82,100,118; a latencies 18,44,70; b 36,62,88.
	if got := res.Streams[0].Hist.Max(); got != 70 {
		t.Errorf("stream a max = %d, want 70", got)
	}
	if got := res.Streams[1].Hist.Max(); got != 88 {
		t.Errorf("stream b max = %d, want 88", got)
	}
	if res.Combined.Count() != 6 {
		t.Errorf("combined count = %d, want 6", res.Combined.Count())
	}
}

// TestRunDeterministic: identical inputs must produce identical results
// and identical trace events, including the per-request spans.
func TestRunDeterministic(t *testing.T) {
	build := func() ([]StreamConfig, *obs.Trace) {
		return []StreamConfig{
			{Name: "p", Spec: ArrivalSpec{Kind: Poisson, Rate: 50, N: 200, Seed: 77}, Srv: chargeServer(30_000), SLO: 200_000},
			{Name: "q", Spec: ArrivalSpec{Kind: Bursty, Rate: 10, N: 50, Seed: 8, Period: 500_000, Duty: 0.25}, Srv: chargeServer(10_000)},
		}, obs.New(nil)
	}
	s1, t1 := build()
	r1, err := Run(t1, "track", s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, t2 := build()
	r2, err := Run(t2, "track", s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if r1.Combined.Quantile(q) != r2.Combined.Quantile(q) {
			t.Fatalf("q=%v diverged", q)
		}
	}
	if r1.Makespan != r2.Makespan || r1.Service != r2.Service {
		t.Fatal("makespan/service diverged")
	}
	if !reflect.DeepEqual(t1.Events(), t2.Events()) {
		t.Fatal("trace events diverged")
	}
	ev := t1.Events()
	if len(ev) != 2*(200+50) {
		t.Fatalf("expected %d span events, got %d", 2*(200+50), len(ev))
	}
}

// TestRunPropagatesErrors: a failing server aborts the run with the
// stream and request identified.
func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	streams := []StreamConfig{{
		Name: "bad",
		Spec: ArrivalSpec{Kind: Fixed, Rate: 100, N: 5},
		Srv: ServerFunc(func(i int) (core.Tally, error) {
			if i == 3 {
				return core.Tally{}, boom
			}
			return core.Tally{Normal: 10}, nil
		}),
	}}
	if _, err := Run(nil, "t", streams); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	bad := []StreamConfig{{Name: "x", Spec: ArrivalSpec{Kind: Poisson, Rate: 0, N: 5}}}
	if _, err := Run(nil, "t", bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
