package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Arrival processes. A schedule is a monotone sequence of arrival
// timestamps in modeled cycles, generated from a compact seeded spec so
// a sweep point's offered load is reproducible from its spec string
// alone (the string appears in trace track names and the rendered
// tables). All randomness comes from a splitmix64 stream keyed by the
// spec's seed — never math/rand, whose sequence is not stable across
// Go releases.

// Kind selects the arrival process.
type Kind uint8

const (
	// Poisson arrivals: exponential i.i.d. interarrival gaps — the
	// classic open-loop memoryless client population.
	Poisson Kind = iota
	// Bursty arrivals: an on/off-modulated Poisson process. Arrivals
	// occur only during the first Duty fraction of each Period, at rate
	// Rate/Duty, so the long-run average rate still equals Rate but the
	// instantaneous rate during a burst is 1/Duty times higher.
	Bursty
	// Fixed arrivals: a deterministic fixed-rate pacer (interarrival
	// exactly 1/Rate) — the zero-variance baseline.
	Fixed
)

func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Fixed:
		return "fixed"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec bounds. Rates are requests per Mcycle (10^6 modeled cycles);
// the bounds keep every schedule's final timestamp far from uint64
// overflow even under worst-case exponential draws (-ln(2^-53) ≈ 36.7
// mean interarrivals), so Times can promise monotone, bounded output
// for every Validate-accepted spec.
const (
	// MaxRequests bounds a single schedule's length.
	MaxRequests = 1 << 21
	// MinRate / MaxRate bound the offered load, requests per Mcycle.
	MinRate = 1e-3
	MaxRate = 1e9
	// MinDuty bounds how extreme a bursty duty cycle can get.
	MinDuty = 0.01
	// MaxPeriod bounds the bursty on/off period, in cycles.
	MaxPeriod = 1 << 40
	// MaxScheduleCycles is the ceiling on any generated timestamp;
	// Times reports an error instead of exceeding it.
	MaxScheduleCycles = uint64(1) << 60
)

// ArrivalSpec is one seeded arrival process. The zero value is not
// valid; build one directly or with ParseArrivalSpec.
type ArrivalSpec struct {
	Kind Kind
	Rate float64 // mean requests per Mcycle, in [MinRate, MaxRate]
	N    int     // number of requests, in [0, MaxRequests]
	Seed uint64  // PRNG seed (unused by Fixed)

	// Bursty-only shape parameters.
	Period uint64  // on/off period in cycles, in [1, MaxPeriod]
	Duty   float64 // fraction of each period that is "on", in [MinDuty, 1]
}

// String renders the canonical spec form, e.g.
//
//	poisson:rate=33.5,n=600,seed=7
//	bursty:rate=33.5,n=600,seed=7,period=2000000,duty=0.25
//	fixed:rate=33.5,n=600
//
// ParseArrivalSpec(s.String()) == s for every valid spec (the fuzz
// target holds the parser to it).
func (s ArrivalSpec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	fmt.Fprintf(&b, ":rate=%s,n=%d", strconv.FormatFloat(s.Rate, 'g', -1, 64), s.N)
	if s.Kind != Fixed {
		fmt.Fprintf(&b, ",seed=%d", s.Seed)
	}
	if s.Kind == Bursty {
		fmt.Fprintf(&b, ",period=%d,duty=%s", s.Period, strconv.FormatFloat(s.Duty, 'g', -1, 64))
	}
	return b.String()
}

// Validate checks the spec against the documented bounds. Every
// rejection is an error, never a panic — the parser feeds on untrusted
// input (it is fuzzed), and NaN/Inf/zero/negative rates must die here,
// not overflow a schedule later.
func (s ArrivalSpec) Validate() error {
	if s.Kind > Fixed {
		return fmt.Errorf("load: unknown arrival kind %d", s.Kind)
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("load: rate must be finite, got %v", s.Rate)
	}
	if s.Rate < MinRate || s.Rate > MaxRate {
		return fmt.Errorf("load: rate %g outside [%g, %g] req/Mcycle", s.Rate, float64(MinRate), float64(MaxRate))
	}
	if s.N < 0 || s.N > MaxRequests {
		return fmt.Errorf("load: n %d outside [0, %d]", s.N, MaxRequests)
	}
	if s.Kind == Bursty {
		if math.IsNaN(s.Duty) || s.Duty < MinDuty || s.Duty > 1 {
			return fmt.Errorf("load: duty %v outside [%g, 1]", s.Duty, float64(MinDuty))
		}
		if s.Period < 1 || s.Period > MaxPeriod {
			return fmt.Errorf("load: period %d outside [1, %d]", s.Period, int64(MaxPeriod))
		}
	}
	return nil
}

// ParseArrivalSpec parses the canonical "kind:k=v,..." form. Keys are
// strict: each kind accepts exactly its canonical key set, once each —
// a spec that survives parsing re-renders to an equivalent string.
func ParseArrivalSpec(in string) (ArrivalSpec, error) {
	var s ArrivalSpec
	head, rest, ok := strings.Cut(in, ":")
	if !ok {
		return s, fmt.Errorf("load: spec %q: missing ':'", in)
	}
	switch head {
	case "poisson":
		s.Kind = Poisson
	case "bursty":
		s.Kind = Bursty
	case "fixed":
		s.Kind = Fixed
	default:
		return s, fmt.Errorf("load: unknown arrival kind %q", head)
	}
	allowed := map[string]bool{"rate": true, "n": true}
	if s.Kind != Fixed {
		allowed["seed"] = true
	}
	if s.Kind == Bursty {
		allowed["period"] = true
		allowed["duty"] = true
	}
	seen := make(map[string]bool)
	for _, field := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("load: spec field %q: missing '='", field)
		}
		if !allowed[k] {
			return s, fmt.Errorf("load: key %q not allowed for kind %s", k, s.Kind)
		}
		if seen[k] {
			return s, fmt.Errorf("load: duplicate key %q", k)
		}
		seen[k] = true
		var err error
		switch k {
		case "rate":
			s.Rate, err = strconv.ParseFloat(v, 64)
		case "duty":
			s.Duty, err = strconv.ParseFloat(v, 64)
		case "n":
			s.N, err = strconv.Atoi(v)
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "period":
			s.Period, err = strconv.ParseUint(v, 10, 64)
		}
		if err != nil {
			return s, fmt.Errorf("load: spec field %q: %v", field, err)
		}
	}
	for _, k := range []string{"rate", "n"} {
		if !seen[k] {
			return s, fmt.Errorf("load: spec %q: missing key %q", in, k)
		}
	}
	if s.Kind == Bursty {
		for _, k := range []string{"period", "duty"} {
			if !seen[k] {
				return s, fmt.Errorf("load: spec %q: missing key %q", in, k)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// splitmix is the schedule PRNG: tiny, stable forever, and trivially
// seedable per spec.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// exp draws a standard-exponential variate: -ln(U) with U in (0, 1],
// so the draw is finite (at most ~36.7) and never NaN.
func (r *splitmix) exp() float64 {
	u := float64(r.next()>>11) / (1 << 53) // [0, 1)
	return -math.Log(1 - u)
}

// Times generates the schedule: N monotone non-decreasing arrival
// timestamps in cycles, all <= MaxScheduleCycles. A spec whose draws
// would exceed the ceiling returns an error rather than wrapping.
func (s ArrivalSpec) Times() ([]uint64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mean := 1e6 / s.Rate // mean interarrival, cycles
	out := make([]uint64, 0, s.N)
	rng := splitmix{s: s.Seed}
	emit := func(t float64) error {
		if t > float64(MaxScheduleCycles) {
			return fmt.Errorf("load: %s: schedule exceeds %d cycles at request %d", s, MaxScheduleCycles, len(out))
		}
		out = append(out, uint64(t))
		return nil
	}
	switch s.Kind {
	case Fixed:
		for i := 0; i < s.N; i++ {
			if err := emit(mean * float64(i+1)); err != nil {
				return nil, err
			}
		}
	case Poisson:
		t := 0.0
		for i := 0; i < s.N; i++ {
			t += rng.exp() * mean
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	case Bursty:
		// A Poisson process on the "on-time" axis, mapped into real
		// time by skipping the off window of every period. Interarrival
		// mean on the on-axis is mean*Duty, so the long-run average
		// rate over real time is exactly Rate.
		onLen := s.Duty * float64(s.Period)
		onTime := 0.0
		for i := 0; i < s.N; i++ {
			onTime += rng.exp() * mean * s.Duty
			k := math.Floor(onTime / onLen)
			real := k*float64(s.Period) + (onTime - k*onLen)
			if err := emit(real); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
