package load

import (
	"bytes"
	"testing"

	"sgxnet/internal/obs/series"
)

// Property test for the two merge layers the -workers gates compose:
// per-worker latency Hists merged with Hist.Merge, and per-worker
// windowed series merged with Set.Merge, must both reduce to exactly
// the single-worker result — under fuzz-chosen window widths (including
// widths that slice the observation range at awkward boundaries) and
// shard counts. The histogram quantiles and the canonical CSV export
// are the two surfaces the goldens gate on, so those are what the
// property compares.

// fuzzmix is the seeded generator (splitmix64, stable across releases).
func fuzzmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func checkMergeEquivalence(t *testing.T, seed, window uint64, shards uint8, n uint16) {
	t.Helper()
	window = window%(48<<20) + 1 // 1 cycle .. ~48M cycles
	k := int(shards%7) + 2       // 2..8 shards
	reqs := int(n%2000) + 100    // spans the exact->bucketed Hist regimes

	type req struct {
		lat    uint64 // latency, cycles
		finish uint64 // virtual finish time, cycles
		viol   bool
	}
	rs := make([]req, reqs)
	for i := range rs {
		rs[i] = req{
			lat:    fuzzmix(&seed) % 5_000_000,
			finish: fuzzmix(&seed) % (96 << 20),
		}
		rs[i].viol = rs[i].lat > 2_500_000
	}

	record := func(h *Hist, sm *series.Sampler, r req) {
		h.Add(r.lat)
		sm.CountAt("done.x", r.finish, 1)
		if r.viol {
			sm.CountAt("viol.x", r.finish, 1)
		}
		sm.GaugeAt("lat.last", r.finish, r.lat)
	}

	// Single-worker reference.
	one := NewHist()
	oneSet := series.NewSet(window)
	oneSm := oneSet.Sampler("cell")
	for _, r := range rs {
		record(one, oneSm, r)
	}

	// Sharded: round-robin across k workers, merged in reverse order.
	hists := make([]*Hist, k)
	sets := make([]*series.Set, k)
	for i := 0; i < k; i++ {
		hists[i] = NewHist()
		sets[i] = series.NewSet(window)
	}
	for i, r := range rs {
		record(hists[i%k], sets[i%k].Sampler("cell"), r)
	}
	mergedH := NewHist()
	mergedS := series.NewSet(window)
	for i := k - 1; i >= 0; i-- {
		mergedH.Merge(hists[i])
		mergedS.Merge(sets[i])
	}

	if mergedH.Count() != one.Count() || mergedH.Sum() != one.Sum() || mergedH.Max() != one.Max() {
		t.Fatalf("hist merge diverges: count %d/%d sum %d/%d max %d/%d",
			mergedH.Count(), one.Count(), mergedH.Sum(), one.Sum(), mergedH.Max(), one.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		// The spill to buckets depends on insertion order, so the two
		// sides may sit in different regimes; only same-regime quantiles
		// are bit-comparable (the engine always builds its combined hist
		// by the same merge path, which is what the goldens pin).
		if mergedH.Bucketed() == one.Bucketed() && mergedH.Quantile(q) != one.Quantile(q) {
			t.Fatalf("q%.3f diverges: %d != %d", q, mergedH.Quantile(q), one.Quantile(q))
		}
	}

	var a, b bytes.Buffer
	if err := series.WriteCSV(&a, oneSet); err != nil {
		t.Fatal(err)
	}
	if err := series.WriteCSV(&b, mergedS); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("series merge diverges from single-worker export (window=%d shards=%d reqs=%d)", window, k, reqs)
	}
	// Cross-check one reduction semantically: total done must equal the
	// request count on both sides.
	if got := mergedS.Get("cell/done.x").Sum(0, ^uint64(0)); got != uint64(reqs) {
		t.Fatalf("merged done sum %d != %d requests", got, reqs)
	}
}

// FuzzHistSeriesMerge drives the property under the fuzzer; the seed
// corpus below runs on every plain `go test`, covering tiny windows
// (every observation its own window), huge windows (everything in
// window zero), and boundary-straddling widths.
func FuzzHistSeriesMerge(f *testing.F) {
	f.Add(uint64(1), uint64(1<<20), uint8(0), uint16(200))
	f.Add(uint64(42), uint64(0), uint8(3), uint16(1500)) // window -> 1 cycle
	f.Add(uint64(7), uint64(4<<20), uint8(6), uint16(900))
	f.Add(uint64(99), uint64(96<<20), uint8(1), uint16(400)) // one giant window
	f.Add(uint64(1234), uint64(3_333_333), uint8(4), uint16(1999))
	f.Fuzz(func(t *testing.T, seed, window uint64, shards uint8, n uint16) {
		checkMergeEquivalence(t, seed, window, shards, n)
	})
}
