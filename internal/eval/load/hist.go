// Package load is the open-loop load engine: seeded arrival processes,
// a virtual-cycle queueing core, and a deterministic latency-percentile
// estimator. Everything the paper's evaluation reports is a closed-loop
// per-op average; the applications the paper pitches (Tor relays, TLS
// middleboxes, SDN controllers) live or die on tail latency under
// open-loop arrivals, where requests keep arriving whether or not the
// server has finished the previous one. The engine drives the existing
// rigs on the modeled cycle clock (never wall clock), so p50/p99/p999
// are as reproducible as the tables: byte-identical at any worker
// count, golden-tested, and composable with the EPC pager and the
// switchless xcall rings.
package load

import (
	"math/bits"
	"sort"
)

// ExactThreshold is the sample count up to which a Hist stores every
// sample verbatim and quantiles are exact (nearest-rank over the sorted
// samples). Past it the histogram spills into fixed log-spaced buckets
// with bounded relative error.
const ExactThreshold = 512

// histPrecBits fixes the bucket resolution: values below 2^histPrecBits
// get one bucket each (exact), larger values share 2^(histPrecBits-1)
// sub-buckets per power of two. The worst-case relative error of a
// bucket's representative value is 1/2^histPrecBits (≈1.6%).
const histPrecBits = 6

// numBuckets covers the whole uint64 range under the scheme above.
const numBuckets = (1 << histPrecBits) + (64-histPrecBits)*(1<<(histPrecBits-1))

// bucketOf maps a value to its bucket index. Pure integer math — no
// floating point, so the mapping is identical on every platform and the
// goldens that pin bucketed percentiles cannot drift. The mapping is
// monotone: v1 <= v2 ⇒ bucketOf(v1) <= bucketOf(v2).
func bucketOf(v uint64) int {
	if v < 1<<histPrecBits {
		return int(v)
	}
	shift := bits.Len64(v) - histPrecBits // >= 1
	top := int(v >> uint(shift))          // in [2^(P-1), 2^P)
	return 1<<histPrecBits + (shift-1)<<(histPrecBits-1) + top - 1<<(histPrecBits-1)
}

// bucketRep returns the canonical representative value of a bucket: the
// midpoint of its range. |rep − v| / v <= 1/2^histPrecBits for every v
// in the bucket.
func bucketRep(idx int) uint64 {
	if idx < 1<<histPrecBits {
		return uint64(idx)
	}
	shift := uint((idx-1<<histPrecBits)>>(histPrecBits-1)) + 1
	top := uint64((idx-1<<histPrecBits)&(1<<(histPrecBits-1)-1)) + 1<<(histPrecBits-1)
	return top<<shift + 1<<shift/2
}

// A Hist is the latency-distribution accumulator. Below ExactThreshold
// samples it is exact; above, it degrades to fixed buckets with bounded
// relative error. Merging is deterministic and order-invariant: any
// merge order of the same sample multiset yields identical quantiles,
// which is what lets per-stream and per-shard histograms fold together
// under the parallel Runner without the worker count showing through.
// Not safe for concurrent use; the engine records serially.
type Hist struct {
	count   uint64
	max     uint64
	sum     uint64 // saturating; callers needing exact means use tallies
	samples []uint64
	buckets []uint64 // nil until spilled
}

// NewHist returns an empty histogram. The zero value is NOT ready to
// use; always construct through NewHist.
func NewHist() *Hist {
	return &Hist{samples: make([]uint64, 0, 16)}
}

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// Add records one sample.
func (h *Hist) Add(v uint64) {
	h.count++
	h.sum = satAdd(h.sum, v)
	if v > h.max {
		h.max = v
	}
	if h.buckets != nil {
		h.buckets[bucketOf(v)]++
		return
	}
	h.samples = append(h.samples, v)
	if len(h.samples) > ExactThreshold {
		h.spill()
	}
}

// spill converts the exact samples to buckets and drops them.
func (h *Hist) spill() {
	h.buckets = make([]uint64, numBuckets)
	for _, v := range h.samples {
		h.buckets[bucketOf(v)]++
	}
	h.samples = nil
}

// Merge folds o into h without mutating o. The result depends only on
// the combined sample multiset: if it fits ExactThreshold the merge
// stays exact, otherwise both sides land in the same fixed buckets —
// either way, every merge order produces identical quantiles.
func (h *Hist) Merge(o *Hist) {
	h.count += o.count
	h.sum = satAdd(h.sum, o.sum)
	if o.max > h.max {
		h.max = o.max
	}
	if h.buckets == nil && o.buckets == nil && len(h.samples)+len(o.samples) <= ExactThreshold {
		h.samples = append(h.samples, o.samples...)
		return
	}
	if h.buckets == nil {
		h.spill()
	}
	if o.buckets != nil {
		for i, c := range o.buckets {
			h.buckets[i] += c
		}
		return
	}
	for _, v := range o.samples {
		h.buckets[bucketOf(v)]++
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest recorded sample (exact in both regimes).
func (h *Hist) Max() uint64 { return h.max }

// Sum returns the saturating sum of all samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Bucketed reports whether the histogram has spilled past the exact
// regime.
func (h *Hist) Bucketed() bool { return h.buckets != nil }

// Quantile returns the nearest-rank q-quantile (q in [0,1]; out-of-range
// values clamp to min/max). Exact below ExactThreshold; within a
// 1/2^histPrecBits relative error above it (and the max is always
// exact via Max). Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(1)
	if q > 0 {
		// ceil(q*count) without float edge surprises at q=1.
		r := q * float64(h.count)
		rank = uint64(r)
		if float64(rank) < r {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > h.count {
			rank = h.count
		}
	}
	if h.buckets == nil {
		sorted := make([]uint64, len(h.samples))
		copy(sorted, h.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[rank-1]
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			// A top bucket's midpoint can overshoot the true maximum;
			// clamping keeps Quantile(1) == Max and never hurts accuracy.
			if rep := bucketRep(i); rep < h.max {
				return rep
			}
			return h.max
		}
	}
	return h.max // unreachable: bucket counts sum to count
}
