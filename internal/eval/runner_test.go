package eval

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// The engine's contract: fan-out changes wall-clock interleaving only.
// Results, their order, and the reported error must be identical at any
// worker count.

func TestMapOrderedMatchesSerial(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := mapOrdered[int](nil, 32, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := mapOrdered(NewRunner(workers), 32, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results diverge from serial: %v vs %v", workers, got, want)
		}
	}
}

func TestMapOrderedFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	fn := func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 7:
			return 0, errHigh
		}
		return i, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := mapOrdered(NewRunner(workers), 16, fn)
		if err != errLow {
			t.Errorf("workers=%d: want lowest-index error %v, got %v", workers, errLow, err)
		}
	}
}

func TestMapOrderedRunsEveryIndexOnce(t *testing.T) {
	var calls [64]atomic.Uint32
	_, err := mapOrdered(NewRunner(8), len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}
}

func TestPairMatchesSerial(t *testing.T) {
	fa := func() (string, error) { return "native", nil }
	fb := func() (int, error) { return 42, nil }
	for _, workers := range []int{1, 4} {
		a, b, err := pair(NewRunner(workers), fa, fb)
		if err != nil || a != "native" || b != 42 {
			t.Errorf("workers=%d: got (%q, %d, %v)", workers, a, b, err)
		}
	}
}

// TestFigure3ParallelSerialEquivalence runs a short Figure 3 sweep —
// nested fan-out: points across the pool, a native/SGX pair inside each
// point — serially and at high parallelism, and requires bit-identical
// cycle tallies. This is the meter/scenario determinism claim the golden
// files rest on, checked under -race in CI.
func TestFigure3ParallelSerialEquivalence(t *testing.T) {
	ns := []int{5, 10, 15}
	serial, err := NewRunner(1).Figure3(ns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(8).Figure3(ns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel sweep diverges from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestTable4ParallelSerialEquivalence checks the native-vs-SGX pair legs
// in isolation, including every per-AS tally in the run reports.
func TestTable4ParallelSerialEquivalence(t *testing.T) {
	serial, err := NewRunner(1).Table4At(10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(4).Table4At(10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel Table 4 diverges from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}
