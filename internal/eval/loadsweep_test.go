package eval

import (
	"reflect"
	"testing"
)

// TestLoadSweepPoint sanity-checks one cheap cell end to end: a stable
// queue, positive percentiles in order, and the exact-regime reduction.
func TestLoadSweepPoint(t *testing.T) {
	pt, err := loadSweepPoint(nil, nil, loadCell{"tls", "poisson", 0.5, "-"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MeanSvc == 0 || pt.Rate <= 0 {
		t.Fatalf("calibration produced meanSvc=%d rate=%v", pt.MeanSvc, pt.Rate)
	}
	if !(pt.P50 <= pt.P99 && pt.P99 <= pt.P999 && pt.P999 <= pt.Max) {
		t.Fatalf("percentiles out of order: %+v", pt)
	}
	if pt.P50 < pt.MeanSvc/2 {
		t.Fatalf("p50 %d implausibly below service %d", pt.P50, pt.MeanSvc)
	}
	if pt.Bucketed {
		t.Fatal("64 requests should reduce exactly")
	}
	if pt.Util <= 0 || pt.Util > 1.01 {
		t.Fatalf("utilization %v out of range", pt.Util)
	}
}

// TestLoadSweepPagerComposes: the epc=1.5 axis must be slower per
// request than epc=0.5 — oversubscription puts paging on the request
// path, which is the whole point of the composition.
func TestLoadSweepPagerComposes(t *testing.T) {
	under, err := loadSweepPoint(nil, nil, loadCell{"tls", "poisson", 0.5, "epc=0.5"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	over, err := loadSweepPoint(nil, nil, loadCell{"tls", "poisson", 0.5, "epc=1.5"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if over.MeanSvc <= under.MeanSvc {
		t.Fatalf("oversubscribed EPC not slower: %d <= %d", over.MeanSvc, under.MeanSvc)
	}
}

// TestLoadSweepAntagonistRace runs every antagonist cell on a parallel
// pool twice and demands identical reductions — the race-enabled gate
// for the interference points (go test -race makes this a data-race
// detector for the two-stream engine under the worker pool).
func TestLoadSweepAntagonistRace(t *testing.T) {
	cells := []loadCell{
		{"tor", "poisson", 0.5, "+cpu"},
		{"tor", "poisson", 0.5, "+cross"},
		{"tls", "poisson", 0.5, "+epc"},
	}
	run := func(workers int) []LoadSweepPoint {
		t.Helper()
		r := NewRunner(workers)
		pts, err := mapOrdered(r, len(cells), func(i int) (LoadSweepPoint, error) {
			return loadSweepPoint(r.trace, r.series, cells[i], 48)
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	w1, w8 := run(1), run(8)
	if !reflect.DeepEqual(w1, w8) {
		t.Fatalf("antagonist cells diverge across worker counts:\n1: %+v\n8: %+v", w1, w8)
	}
	for _, p := range w8 {
		if p.Util <= 0 {
			t.Fatalf("antagonist cell %s/%s produced zero utilization", p.App, p.Compose)
		}
	}
}
