package eval

import (
	"strings"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/nfchain"
	"sgxnet/internal/obs"
	"sgxnet/internal/ratls"
	"sgxnet/internal/xcall"
)

// TestProbeKindAudit holds the probe-kind namespace closed: a strict
// registry installed under a workload that exercises every instrumented
// subsystem (the platform's instruction stream, the pager, the xcall
// rings, the TLS record codec) must see only kinds that were registered
// with a doc string. A new Observe call site whose kind skipped
// RegisterKind — or a typo in an existing one — fails here by name.
func TestProbeKindAudit(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetStrict(true)
	tr := obs.New(reg)
	core.SetDefaultProbe(reg)
	defer core.SetDefaultProbe(nil)
	r := NewRunner(1)
	r.SetTrace(tr)
	if _, err := r.Table4At(30); err != nil {
		t.Fatal(err)
	}
	if _, err := epcSweepPoint(tr, nil, 2, 2.0, "clock"); err != nil {
		t.Fatal(err)
	}
	if _, err := xcallSweepPoint(tr, nil, "tls", &xcall.Config{Batch: 16, SpinBudget: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSweepPoint(tr, nil, loadCell{"tls", "poisson", 0.8, "xcall=16"}, 48); err != nil {
		t.Fatal(err)
	}
	if _, err := ratlsSweepPoint(tr, nil, "sgx", 2, 1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := chainSweepPoint(tr, nil, "sgx", 2, 16, 16); err != nil {
		t.Fatal(err)
	}

	if unknown := reg.UnknownKinds(); len(unknown) > 0 {
		t.Fatalf("probe kinds fired without a RegisterKind doc string:\n  %s",
			strings.Join(unknown, "\n  "))
	}

	// The audit only means something if the workload actually fired the
	// families it claims to cover.
	for _, family := range []string{
		core.KindEENTER, core.KindPagerFault, xcall.KindCall, "record.seal",
		ratls.KindVerifyCold, ratls.KindVerifyWarm,
		nfchain.KindProcess, nfchain.KindRuleExamined, nfchain.KindRuleMatch,
		nfchain.KindForward, nfchain.KindMirror, nfchain.KindDrop,
		nfchain.KindTerminate, nfchain.KindAlert, nfchain.KindAdmit,
	} {
		if reg.Get(family) == 0 {
			t.Errorf("audit workload never fired %s — coverage shrank, the empty unknown set proves nothing about that family", family)
		}
	}

	// And every fired counter that looks like a probe family must be
	// documented — including ones fired by subsystems this test did not
	// anticipate (Add-only summary counters like load.sweep.* and
	// event.* instants are exempt by construction: they never pass
	// through Observe).
	for _, k := range obs.KnownKinds() {
		if _, ok := obs.KindDoc(k); !ok {
			t.Errorf("KnownKinds lists %s but KindDoc cannot resolve it", k)
		}
	}
}
