package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sgxnet/internal/obs/series"
	"sgxnet/internal/xcall"
)

var updateSeries = flag.Bool("update-series", false, "rewrite the golden series file")

// seriesRun samples the reference workload — one cell per instrumented
// sweep, the same small points the trace golden pins — into a fresh set
// and returns its canonical CSV export.
func seriesRun(t *testing.T, workers int) []byte {
	t.Helper()
	set := series.NewSet(0)
	r := NewRunner(workers)
	r.SetSeries(set)
	type cellFn func() error
	cells := []cellFn{
		func() error {
			_, err := epcSweepPoint(nil, set, 2, 2.0, "clock")
			return err
		},
		func() error {
			_, err := xcallSweepPoint(nil, set, "tls", &xcall.Config{Batch: 16, SpinBudget: 64})
			return err
		},
		func() error {
			_, err := loadSweepPoint(nil, set, loadCell{"tls", "poisson", 0.8, "xcall=16"}, 48)
			return err
		},
		func() error {
			_, err := scaleSweepPoint(nil, set, "sdn:ases=8,updates=2,rate=100,seed=42,edges=0-1|1-2")
			return err
		},
	}
	if _, err := mapOrdered(r, len(cells), func(i int) (struct{}, error) {
		return struct{}{}, cells[i]()
	}); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := series.WriteCSV(&b, set); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSeriesGolden pins the reference series export byte for byte:
// every sample timestamp comes from a virtual clock (engine FIFO time,
// summed meters, kernel heap time), never wall clock, so the export
// must not move between runs or machines.
func TestSeriesGolden(t *testing.T) {
	got := seriesRun(t, 1)
	path := filepath.Join("testdata", "series.golden")
	if *updateSeries {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update-series): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("series export diverged from golden (len %d vs %d); rerun with -update-series if intended",
			len(got), len(want))
	}
}

// TestSeriesWorkersEquivalence: the reference workload sampled into one
// shared set must export identically at any worker count — concurrent
// cells write distinct track prefixes and the window reduction is
// order-invariant, so parallelism must be invisible.
func TestSeriesWorkersEquivalence(t *testing.T) {
	w1 := seriesRun(t, 1)
	w8 := seriesRun(t, 8)
	if !bytes.Equal(w1, w8) {
		t.Fatalf("series export differs between -workers 1 (%d bytes) and -workers 8 (%d bytes)", len(w1), len(w8))
	}
	if len(w1) == 0 || bytes.Count(w1, []byte("\n")) < 10 {
		t.Fatal("series export implausibly small — sampling is not wired")
	}
}

// TestLoadSweepBurnAlert is the acceptance gate for the burn-rate
// pipeline: in the bursty ρ=0.95 cell, the multi-window alert must fire
// in some windows but not all — the run-total violation count says "the
// SLO was missed" while the burn series says *when*, and the off-burst
// windows prove the signal is a transient the total alone cannot show.
func TestLoadSweepBurnAlert(t *testing.T) {
	set := series.NewSet(0)
	c := loadCell{"tls", "bursty", 0.95, "-"}
	pt, err := loadSweepPoint(nil, set, c, loadSweepN["tls"])
	if err != nil {
		t.Fatal(err)
	}
	if pt.Viol == 0 {
		t.Fatal("bursty rho=0.95 cell produced no violations — the cell no longer stresses the SLO")
	}
	pairs := series.BurnPairs(set)
	if len(pairs) != 1 {
		t.Fatalf("want 1 burn pair, got %d (%v)", len(pairs), set.Names())
	}
	pts := series.BurnRate(pairs[0].Viol, pairs[0].Done, series.DefaultBurnRule)
	alerts, quiet, active := 0, 0, 0
	for _, b := range pts {
		if b.Alert {
			alerts++
		}
		if b.Done > 0 {
			active++
			if b.Viol == 0 {
				quiet++
			}
		}
	}
	if alerts == 0 {
		t.Fatal("burn alert never fired in the bursty rho=0.95 cell")
	}
	if alerts >= len(pts) {
		t.Fatalf("burn alert fired in every window (%d of %d) — no localization over the run total", alerts, len(pts))
	}
	if quiet == 0 {
		t.Fatalf("no violation-free window with completions (%d active) — the run-total summary would already tell the story", active)
	}
}
