package eval

import (
	"testing"

	"sgxnet/internal/xcall"
)

// TestXcallSweepShape checks the claim the sweep exists to demonstrate:
// switchless calls recover at least 2× of the modeled crossing cycles
// at batch ≥16 for every application, with the ring's fallbacks
// reported, while batch 1 buys little (every drain still pays an
// amortized crossing).
func TestXcallSweepShape(t *testing.T) {
	pts, err := XcallSweep()
	if err != nil {
		t.Fatal(err)
	}
	perApp := 1 + len(xcallSweepGrid.batches)*len(xcallSweepGrid.spins)
	if want := len(xcallSweepGrid.apps) * perApp; len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		switch p.Mode {
		case "sync":
			if p.Speedup != 1.0 {
				t.Errorf("%s sync: speedup %.2f, want 1.00", p.App, p.Speedup)
			}
			if p.Stats != (xcall.Stats{}) {
				t.Errorf("%s sync: ring stats %+v, want zero", p.App, p.Stats)
			}
			if p.SGX.SGXU == 0 {
				t.Errorf("%s sync: no crossings measured", p.App)
			}
		case "switchless":
			if p.Stats.Calls == 0 && p.Stats.Fallbacks == 0 {
				t.Errorf("%s batch=%d spin=%d: ring never used: %+v", p.App, p.Batch, p.Spin, p.Stats)
			}
			if p.Stats.Fallbacks == 0 {
				t.Errorf("%s batch=%d spin=%d: no fallbacks reported", p.App, p.Batch, p.Spin)
			}
			if p.Batch >= 16 && p.Speedup < 2.0 {
				t.Errorf("%s batch=%d spin=%d: speedup %.2f < 2× acceptance bar",
					p.App, p.Batch, p.Spin, p.Speedup)
			}
		default:
			t.Errorf("unknown mode %q", p.Mode)
		}
	}
}

// TestXcallSweepDeterministic checks the determinism contract: serial
// runs repeat exactly and an oversubscribed-parallel run matches.
func TestXcallSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times; slow under -short")
	}
	a, err := NewRunner(1).XcallSweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(1).XcallSweep()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRunner(8).XcallSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d diverged between serial runs:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Errorf("point %d diverged at -workers 8:\n%+v\n%+v", i, a[i], c[i])
		}
	}
}
