package eval

import (
	"fmt"
	"io"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
)

// Fault-tolerance ablation: how the hardened attestation protocol
// degrades as the network adversary's residual powers (delay, loss,
// reordering — §2.1's threat model minus what the channel MACs already
// turn into hard failures) grow. For each fault intensity the rig runs
// repeated remote attestations through the retry driver and reports the
// success rate, how many retries the survivors needed, and the cycle
// overhead relative to the clean run — every timeout and retry charges
// the challenger's meter, so robustness is priced, not free.
//
// The sweep is wall-clock sensitive (timeouts race real goroutine
// scheduling), so unlike the tables it is NOT golden-tested and is not
// part of sgxnet-tables' default output; it runs under the -faults flag.

// FaultTolerancePoint is one intensity step of the ablation.
type FaultTolerancePoint struct {
	// Intensity is the per-link message drop probability.
	Intensity float64
	// Trials is the number of attestation runs attempted.
	Trials int
	// Successes counts runs that established a session within the
	// retry budget.
	Successes int
	// Retries totals the extra protocol runs across all trials.
	Retries int
	// AvgCycles is the mean challenger cycle cost of a successful run
	// (retries and timeouts included); zero if nothing succeeded.
	AvgCycles uint64
	// Overhead is AvgCycles relative to the clean (intensity 0) run.
	Overhead float64
	// Stats sums the fault engine's interventions over all trials.
	Stats netsim.FaultStats
}

// faultTolPolicy bounds each trial: a budget of six protocol runs, and
// deadlines far above the simulator's sub-millisecond fault delays —
// the clean point must never time out, even when -race slows the DH
// and signing work by an order of magnitude.
func faultTolPolicy() attest.RetryPolicy {
	return attest.RetryPolicy{Attempts: 6, RecvTimeout: 800 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: 8 * time.Millisecond}
}

// faultTolSchedule builds the per-trial disturbance: every link —
// including the host-local quoting-enclave hop — sees latency, jitter,
// and occasional reordering, plus drops at the swept intensity.
func faultTolSchedule(seed int64, drop float64) *netsim.FaultSchedule {
	return netsim.NewFaultSchedule(seed).AddLink(netsim.LinkFaults{
		Latency:     200 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		DropProb:    drop,
		ReorderProb: 0.02,
	})
}

// AblationFaultTolerance sweeps drop intensity against attestation
// success rate and cycle overhead on the default (fully parallel)
// runner. A nil intensities slice uses the default sweep (which starts
// at 0, the overhead baseline); trials <= 0 defaults to 4 runs per
// point. Schedules are seeded deterministically per (point, trial), so
// the fault draws replay; only the wall-clock timeout behavior is
// environment-dependent.
func AblationFaultTolerance(intensities []float64, trials int) ([]FaultTolerancePoint, error) {
	return defaultRunner().FaultTolerance(intensities, trials)
}

// FaultTolerance runs the fault-tolerance sweep with each intensity as
// an independent scenario on the pool. Every point owns a private rig
// and network, and its schedules are seeded by (point, trial), so the
// fault draws are unchanged by fan-out; the baseline-relative overhead
// is computed after the in-order merge.
func (r *Runner) FaultTolerance(intensities []float64, trials int) ([]FaultTolerancePoint, error) {
	if intensities == nil {
		intensities = []float64{0, 0.02, 0.05, 0.10, 0.20}
	}
	if trials <= 0 {
		trials = 4
	}
	pol := faultTolPolicy()
	pts, err := mapOrdered(r, len(intensities), func(i int) (FaultTolerancePoint, error) {
		return faultTolPoint(r.trace, i, intensities[i], trials, pol)
	})
	if err != nil {
		return nil, err
	}
	baseline := pts[0].AvgCycles
	for i := range pts {
		if baseline > 0 && pts[i].AvgCycles > 0 {
			pts[i].Overhead = float64(pts[i].AvgCycles) / float64(baseline)
		}
	}
	return pts, nil
}

// faultTolPoint measures one intensity step on a private rig. With a
// trace, each trial's schedule recipe and every fault intervention land
// on a "faults/drop=…" track alongside the challenger's retry events —
// the satellite recipe for replaying a failing faulty run from its
// trace. Fault events interleave on network goroutines, so these
// tracks (like the sweep itself) are wall-clock sensitive and excluded
// from byte-identical goldens; the recipe plus the per-event virtual-
// clock ticks still reproduce the run.
func faultTolPoint(tr *obs.Trace, i int, drop float64, trials int, pol attest.RetryPolicy) (FaultTolerancePoint, error) {
	rig, err := newAttestRig()
	if err != nil {
		return FaultTolerancePoint{}, err
	}
	rig.tShim.SetRecvTimeout(pol.RecvTimeout)
	l, err := rig.hostT.Listen("app")
	if err != nil {
		return FaultTolerancePoint{}, err
	}
	defer l.Close()
	go l.Serve(func(c *netsim.Conn) {
		defer c.Close()
		if _, err := attest.Respond(rig.target, rig.tShim, rig.hostT, c); err != nil {
			return
		}
		// Linger: the challenger closes once it is done with the
		// session; closing first would race delayed deliveries.
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})

	pt := FaultTolerancePoint{Intensity: drop, Trials: trials}
	track := fmt.Sprintf("faults/drop=%.2f", drop)
	var cycles uint64
	for trial := 0; trial < trials; trial++ {
		fs := faultTolSchedule(int64(7000+100*i+trial), drop)
		if tr != nil {
			rec := &obs.FaultRecorder{T: tr, Track: track}
			rec.RecordSchedule(fs.Seed(), fs.String())
			fs.SetObserver(rec)
		}
		rig.net.SetFaults(fs)
		rig.challenger.Meter().Reset()
		dial := func() (*netsim.Conn, error) { return rig.hostC.Dial("target-host", "app") }
		conn, cid, _, retries, err := attest.ChallengeRetryTrace(
			tr, track, rig.challenger, rig.cShim, rig.cState, dial, true, pol)
		pt.Retries += retries
		if err == nil {
			pt.Successes++
			cycles += rig.challenger.Meter().Snapshot().Cycles()
			rig.cState.Drop(cid)
			conn.Close()
		}
		rig.net.SetFaults(nil)
		st := fs.Stats()
		pt.Stats.Dropped += st.Dropped
		pt.Stats.Duplicated += st.Duplicated
		pt.Stats.Corrupted += st.Corrupted
		pt.Stats.Reordered += st.Reordered
		pt.Stats.Delayed += st.Delayed
		pt.Stats.Partitioned += st.Partitioned
		pt.Stats.Crashes += st.Crashes
		pt.Stats.Restarts += st.Restarts
	}
	if pt.Successes > 0 {
		pt.AvgCycles = cycles / uint64(pt.Successes)
	}
	return pt, nil
}

// RenderFaultTolerance prints the sweep.
func RenderFaultTolerance(w io.Writer, pts []FaultTolerancePoint) {
	fmt.Fprintln(w, "Ablation: attestation fault tolerance (drop intensity vs success and cost)")
	tw := newTab(w)
	fmt.Fprintln(tw, "drop\tsuccess\tretries\tchallenger cycles\toverhead\tdropped\tdelayed")
	for _, p := range pts {
		over := "-"
		if p.Overhead > 0 {
			over = fmt.Sprintf("%.2fx", p.Overhead)
		}
		fmt.Fprintf(tw, "%.0f%%\t%d/%d\t%d\t%s\t%s\t%d\t%d\n",
			p.Intensity*100, p.Successes, p.Trials, p.Retries,
			fmtM(p.AvgCycles), over, p.Stats.Dropped, p.Stats.Delayed)
	}
	tw.Flush()
	fmt.Fprintln(w, "retries and timeouts are metered: overhead is the price of surviving loss")
}
