package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/bgp"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/topo"
	"sgxnet/internal/tor"
)

// TestAblationFaultTolerance checks the sweep's invariants on a small,
// fast grid: the clean point always succeeds with no retries, the
// render mentions the metered overhead, and a lossy point never reports
// a cheaper-than-clean average (timeouts and retries only add cycles).
func TestAblationFaultTolerance(t *testing.T) {
	pts, err := AblationFaultTolerance([]float64{0, 0.10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	clean := pts[0]
	if clean.Successes != clean.Trials {
		t.Fatalf("clean point failed %d/%d attestations", clean.Trials-clean.Successes, clean.Trials)
	}
	if clean.Retries != 0 {
		t.Fatalf("clean point needed %d retries", clean.Retries)
	}
	if clean.Overhead != 1.0 {
		t.Fatalf("clean overhead = %v, want 1.0", clean.Overhead)
	}
	lossy := pts[1]
	if lossy.Successes > 0 && lossy.AvgCycles < clean.AvgCycles {
		t.Fatalf("lossy run cheaper than clean: %d < %d", lossy.AvgCycles, clean.AvgCycles)
	}
	t.Logf("clean=%dM cycles; at 10%% drop: %d/%d ok, %d retries, overhead %.2fx (stats %+v)",
		clean.AvgCycles/1e6, lossy.Successes, lossy.Trials, lossy.Retries, lossy.Overhead, lossy.Stats)

	var b bytes.Buffer
	RenderFaultTolerance(&b, pts)
	for _, want := range []string{"fault tolerance", "overhead", "retries"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q:\n%s", want, b.String())
		}
	}
}

// TestSeededScheduleAcceptance is the end-to-end fault drill: seeded
// schedules combining latency, reordering, a partition window, and an
// authority crash, through which attestation, the SDN route push, and a
// Tor circuit build must all complete via the retry machinery.
func TestSeededScheduleAcceptance(t *testing.T) {
	pol := attest.RetryPolicy{Attempts: 8, RecvTimeout: 250 * time.Millisecond,
		Backoff: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond}
	base := netsim.LinkFaults{
		Latency:     200 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		ReorderProb: 0.05,
	}

	t.Run("attestation", func(t *testing.T) {
		rig, err := newAttestRig()
		if err != nil {
			t.Fatal(err)
		}
		rig.tShim.SetRecvTimeout(pol.RecvTimeout)
		l, err := rig.hostT.Listen("app")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go l.Serve(func(c *netsim.Conn) {
			defer c.Close()
			if _, err := attest.Respond(rig.target, rig.tShim, rig.hostT, c); err != nil {
				return
			}
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		})
		// The partition window swallows the first protocol run outright;
		// the retry loop's own traffic advances the message clock past
		// the window, after which a fresh run goes through.
		fs := netsim.NewFaultSchedule(11).AddLink(base).AddPartition(netsim.Partition{
			A: []string{"challenger-host"}, B: []string{"target-host"}, FromMessage: 2, UntilMessage: 12,
		})
		rig.net.SetFaults(fs)
		defer rig.net.SetFaults(nil)
		dial := func() (*netsim.Conn, error) { return rig.hostC.Dial("target-host", "app") }
		conn, _, id, retries, err := attest.ChallengeRetry(
			rig.challenger, rig.cShim, rig.cState, dial, true, pol)
		if err != nil {
			t.Fatalf("attestation under partition (replay: %s): %v", fs, err)
		}
		conn.Close()
		if id.MREnclave != rig.target.MREnclave() {
			t.Fatalf("attested wrong identity: %+v", id)
		}
		st := fs.Stats()
		if st.Partitioned == 0 {
			t.Fatalf("partition never intervened: %+v", st)
		}
		if retries == 0 {
			t.Fatalf("partition swallowed no attempt (stats %+v)", st)
		}
		t.Logf("attested after %d retries despite %+v", retries, st)
	})

	t.Run("sdn-route-push", func(t *testing.T) {
		tp, err := topo.Random(topo.Config{N: 4, Seed: CanonicalSeed, PrefJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		in, out := base, base
		in.To = "controller"
		out.From = "controller"
		fs := netsim.NewFaultSchedule(13).AddLink(in).AddLink(out).
			AddPartition(netsim.Partition{A: []string{"as1"}, B: []string{"controller"}, FromMessage: 5, UntilMessage: 15})
		rep, err := sdnctl.RunSGXFaulted(tp, fs, pol)
		if err != nil {
			t.Fatalf("SDN run under faults (replay: %s): %v", fs, err)
		}
		want, _ := bgp.ComputeAll(tp)
		if !bgp.RIBsEqual(rep.RIBs, want) {
			t.Fatalf("faulted SDN run diverged from clean computation (replay: %s)", fs)
		}
		for a := 0; a < 4; a++ {
			if len(rep.Installed[a]) != len(want[a]) {
				t.Fatalf("AS%d installed %d routes, want %d", a, len(rep.Installed[a]), len(want[a]))
			}
		}
		t.Logf("routes pushed despite %+v; retries=%d reattests=%d", fs.Stats(), rep.Retries, rep.Reattests)
	})

	t.Run("tor-circuit", func(t *testing.T) {
		tn, err := tor.Deploy(tor.NetworkConfig{Mode: tor.ModeSGXDirectory,
			Authorities: 3, Relays: 3, Exits: 2, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := tn.NewClient("c0", 19)
		if err != nil {
			t.Fatal(err)
		}
		cl.SetRetryPolicy(pol)
		for _, a := range tn.Auths {
			a.SetRecvTimeout(pol.RecvTimeout)
		}
		// One authority dies on the schedule's first message; the
		// consensus quorum and the circuit build must not notice.
		fs := netsim.NewFaultSchedule(23).AddLink(base).
			AddCrash(netsim.HostCrash{Host: tn.Auths[1].Host.Name(), AtMessage: 1})
		tn.Net.SetFaults(fs)
		defer tn.Net.SetFaults(nil)

		consensus, err := cl.FetchConsensus(tn.AuthorityHosts())
		if err != nil {
			t.Fatalf("consensus under crash (replay: %s): %v", fs, err)
		}
		if len(consensus) != 5 {
			t.Fatalf("consensus has %d descriptors, want 5", len(consensus))
		}
		circ, err := cl.BuildCircuitRetry(consensus, 3, tor.WebService)
		if err != nil {
			t.Fatalf("circuit build under faults (replay: %s): %v", fs, err)
		}
		defer circ.Close()
		dest := tor.WebHost + "|" + tor.WebService
		out2, err := circ.Get(dest, []byte("drill"))
		if err != nil || string(out2) != "content:drill" {
			t.Fatalf("Get through circuit: %q, %v (replay: %s)", out2, err, fs)
		}
		st := fs.Stats()
		if st.Crashes == 0 {
			t.Fatalf("authority crash never fired: %+v", st)
		}
		t.Logf("circuit built despite %+v; retries=%d rebuilds=%d", st, cl.Retries, cl.Rebuilds)
	})
}
