package eval

import (
	"fmt"
	"io"
	"strings"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/nfchain"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
	"sgxnet/internal/ratls"
	"sgxnet/internal/tlslite"
)

// Trusted NF-chain sweep (DESIGN.md §16): the composition experiment.
// A packet mix runs through enclave-hosted middlebox pipelines of depth
// 1/2/4/8 — classify, header-filter, DPI, NAT rewrite, re-encrypt —
// routed by an in-enclave rule engine whose table is padded to 16/256/
// 4096 entries. Every hop is one enclave crossing: synchronously at
// batch 1, or amortized through per-stage xcall rings and batched
// egress at batch 16/64. Hop admission rides one shared RA-TLS verifier
// (1 cold + N−1 warm). The native column runs the identical stages and
// rules on a bare meter. The acceptance bar the golden pins: per-hop
// crossing cost at batch ≥16 is strictly below the sync cost at every
// depth, and at depth 8 the rule table — not the crossings — is the
// dominant cost axis.

// chainSweepGrid is the canonical sweep.
var chainSweepGrid = struct {
	depths  []int
	batches []int // SGX cells; native is the batchless baseline column
	rules   []int
}{
	depths:  []int{1, 2, 4, 8},
	batches: []int{1, 16, 64},
	rules:   []int{16, 256, 4096},
}

// chainSweepPackets is the traffic per cell.
const chainSweepPackets = 64

// ChainSweepPoint is one (mode, depth, batch, rules) cell.
type ChainSweepPoint struct {
	Mode  string // "native" or "sgx"
	Depth int    // chain stages
	Batch int    // xcall/egress batch (0 for native)
	Rules int    // rule-table entries

	Packets   int
	Hops      uint64 // stage invocations (incl. mirror copies)
	Delivered uint64
	Dropped   uint64
	Mirrored  uint64
	Alerts    uint64

	AdmitCold   uint64 // RA-TLS full verifications (sgx cells: 1)
	AdmitWarm   uint64 // cache hits (sgx cells: depth−1)
	AdmitCycles uint64 // admission-phase cycles across the chain

	TotalCycles uint64 // process-phase cycles
	PerPacket   uint64 // process cycles per injected packet
	PerHop      uint64 // process cycles per hop
	// CrossPerHop is the pure crossing bill per hop: every SGX-usermode
	// instruction of the process phase at 10K cycles each, over hops.
	// This is the quantity batching must crush.
	CrossPerHop uint64
	// RuleCycles is the rule engine's share of the process phase
	// (examined × CostRuleEval normal instructions), RuleShare its
	// fraction of TotalCycles.
	RuleCycles uint64
	RuleShare  float64
}

// ChainSweep runs the full grid on the default pool.
func ChainSweep() ([]ChainSweepPoint, error) {
	return defaultRunner().ChainSweep()
}

// ChainSweep runs every grid point as an independent scenario on the
// pool. Each point builds its own network, platform, stage enclaves,
// and verifier, so the merged results are byte-identical at any worker
// count.
func (r *Runner) ChainSweep() ([]ChainSweepPoint, error) {
	type cell struct {
		mode  string
		depth int
		batch int
		rules int
	}
	var cells []cell
	for _, d := range chainSweepGrid.depths {
		for _, ru := range chainSweepGrid.rules {
			cells = append(cells, cell{mode: "native", depth: d, rules: ru})
			for _, b := range chainSweepGrid.batches {
				cells = append(cells, cell{mode: "sgx", depth: d, batch: b, rules: ru})
			}
		}
	}
	return mapOrdered(r, len(cells), func(i int) (ChainSweepPoint, error) {
		c := cells[i]
		return chainSweepPoint(r.trace, r.series, c.mode, c.depth, c.batch, c.rules)
	})
}

// chainSweepKeys returns the deterministic session keys of generation g
// (the same fixed byte pattern the xcall sweep pins its TLS rig with).
func chainSweepKeys(g byte) tlslite.Keys {
	var k tlslite.Keys
	for i := 0; i < 16; i++ {
		k.EncC2S[i] = byte(i) + g
		k.EncS2C[i] = byte(i+16) + g
	}
	for i := 0; i < 32; i++ {
		k.MacC2S[i] = byte(i+32) + g
		k.MacS2C[i] = byte(i+64) + g
	}
	return k
}

var chainSweepPatterns = []string{"malware", "exfiltrate"}

// chainSweepStages builds the stage list for a depth. Deeper chains
// rotate keys twice: dpi holds generation 0, the first re-encrypt
// rotates 0→1, the second DPI inspects under generation 1, and the
// final re-encrypt rotates 1→2.
func chainSweepStages(depth int) ([]nfchain.Stage, error) {
	dpi := func(name string, gen byte) (nfchain.Stage, error) {
		return nfchain.NewDPIStage(name, chainSweepKeys(gen), chainSweepPatterns)
	}
	switch depth {
	case 1:
		return []nfchain.Stage{nfchain.NewClassify("classify")}, nil
	case 2:
		d, err := dpi("dpi", 0)
		if err != nil {
			return nil, err
		}
		return []nfchain.Stage{nfchain.NewClassify("classify"), d}, nil
	case 4:
		d, err := dpi("dpi", 0)
		if err != nil {
			return nil, err
		}
		return []nfchain.Stage{
			nfchain.NewClassify("classify"),
			nfchain.NewHeaderFilter("filter", 23),
			d,
			nfchain.NewReencrypt("reencrypt", chainSweepKeys(0), chainSweepKeys(1)),
		}, nil
	case 8:
		d0, err := dpi("dpi", 0)
		if err != nil {
			return nil, err
		}
		d1, err := dpi("dpi2", 1)
		if err != nil {
			return nil, err
		}
		return []nfchain.Stage{
			nfchain.NewClassify("classify"),
			nfchain.NewHeaderFilter("filter", 23),
			d0,
			nfchain.NewTransform("nat", 55555, 0),
			nfchain.NewReencrypt("reencrypt", chainSweepKeys(0), chainSweepKeys(1)),
			d1,
			nfchain.NewTransform("nat2", 55556, 0),
			nfchain.NewReencrypt("reencrypt2", chainSweepKeys(1), chainSweepKeys(2)),
		}, nil
	}
	return nil, fmt.Errorf("eval: chain sweep has no %d-stage layout", depth)
}

// chainSweepRules builds the rule table: a deny-list prefix of filler
// rules that never match the traffic (flows start at 10M), then the
// handful of meaningful rules. Filler-first means the engine walks
// essentially the whole table at every hop — rule-set size R costs
// ~R×CostRuleEval per packet per hop, which is exactly the axis the
// sweep stresses.
func chainSweepRules(depth, rules int) string {
	var base []string
	switch {
	case depth >= 4:
		base = append(base,
			"at classify match proto=17 -> forward:dpi", // UDP skips the filter
			"at classify match tag=dns -> mirror:dpi",   // DNS-over-TCP audited out of band
			"at filter match tag=blocked -> drop",
			"at dpi match tag=malware -> drop")
	case depth >= 2:
		base = append(base,
			"at classify match dst=23 -> drop",
			"at classify match tag=dns -> mirror:dpi",
			"at dpi match tag=malware -> drop")
	default:
		base = append(base, "at classify match dst=23 -> drop")
	}
	if depth >= 8 {
		base = append(base, "at dpi2 match tag=malware -> drop")
	}
	lines := make([]string, 0, rules)
	for i := 0; i < rules-len(base); i++ {
		lines = append(lines, fmt.Sprintf("at classify match flow=%d -> drop", 10_000_000+i))
	}
	lines = append(lines, base...)
	return strings.Join(lines, "\n")
}

// chainSweepTraffic builds the deterministic packet mix: TLS records
// sealed under generation-0 keys (every 8th plaintext carries a DPI
// pattern), destination ports cycling 443/80/53/23 (23 is the deny
// list), and DNS split between UDP (forward rule) and TCP (mirror
// rule). Sealing happens on a scratch meter — traffic generation is
// not part of any cell's bill.
func chainSweepTraffic() ([]nfchain.Packet, error) {
	codec := tlslite.NewCodec(chainSweepKeys(0))
	scratch := core.NewMeter()
	ports := [4]uint16{443, 80, 53, 23}
	pkts := make([]nfchain.Packet, 0, chainSweepPackets)
	for i := 0; i < chainSweepPackets; i++ {
		dst := ports[i%4]
		proto := uint8(6)
		if dst == 53 && i%8 < 4 {
			proto = 17
		}
		plain := fmt.Sprintf("chain packet %04d routine payload padding bytes", i)
		if i%8 == 5 {
			plain = fmt.Sprintf("chain packet %04d carrying malware signature", i)
		}
		rec, err := codec.Seal(scratch, tlslite.ClientToServer, uint64(i), []byte(plain))
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, nfchain.Packet{
			Flow:    uint32(i),
			SrcPort: uint16(40000 + i),
			DstPort: dst,
			Proto:   proto,
			Payload: rec,
		})
	}
	return pkts, nil
}

// chainSweepHead is the chain-head build whose single certificate every
// hop verifies through the shared verifier.
func chainSweepHead() *core.Program {
	prog := &core.Program{
		Name:    "nfchain-head",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"noop": func(env *core.Env, arg []byte) ([]byte, error) { return arg, nil },
		},
	}
	ratls.AddSubjectHandlers(prog)
	return prog
}

// chainSweepPoint measures one cell: build the chain, admit the head
// certificate at every hop (sgx cells), reset the meters, then drive
// the packet mix and read the process-phase bill.
func chainSweepPoint(tr *obs.Trace, set *series.Set, mode string, depth, batch, rules int) (ChainSweepPoint, error) {
	pt := ChainSweepPoint{Mode: mode, Depth: depth, Batch: batch, Rules: rules, Packets: chainSweepPackets}
	track := fmt.Sprintf("chain-sweep/mode=%s/depth=%d/batch=%d/rules=%d", mode, depth, batch, rules)

	stages, err := chainSweepStages(depth)
	if err != nil {
		return pt, err
	}
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name()
	}
	rs, err := nfchain.CompileText(chainSweepRules(depth, rules), names)
	if err != nil {
		return pt, err
	}
	pkts, err := chainSweepTraffic()
	if err != nil {
		return pt, err
	}

	mc := &meterClock{}
	sm := set.Sampler(track)
	var probe core.Probe
	if tr != nil {
		probe = tr.Registry()
	}

	var meters []*core.Meter
	var admitTally core.Tally
	process := func() error { return nil }
	var readStats func() nfchain.Stats
	var readTally func() core.Tally

	switch mode {
	case "native":
		meter := core.NewMeter()
		mc.bind(meter)
		var smp core.SampleProbe
		if sm != nil {
			smp = sm
		}
		nat, err := nfchain.NewNative(stages, rs, meter, probe, smp, mc.Now)
		if err != nil {
			return pt, err
		}
		meters = []*core.Meter{meter}
		process = func() error {
			for i := range pkts {
				p := pkts[i]
				if err := nat.Process(&p); err != nil {
					return fmt.Errorf("eval: native chain packet %d: %w", i, err)
				}
			}
			return nil
		}
		readStats = nat.Stats
		readTally = nat.Tally

	case "sgx":
		arch, err := core.NewSigner()
		if err != nil {
			return pt, err
		}
		plat, err := core.NewPlatform("chain-sweep", core.PlatformConfig{
			EPCFrames: 2048, ArchSigner: arch.MRSigner(), Seed: []byte(track),
		})
		if err != nil {
			return pt, err
		}
		net := netsim.New()
		host, err := net.AddHostWithPlatform("chain", plat)
		if err != nil {
			return pt, err
		}
		sink, err := net.AddHost("sink", core.PlatformConfig{EPCFrames: 64})
		if err != nil {
			return pt, err
		}
		l, err := sink.Listen("sink")
		if err != nil {
			return pt, err
		}
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					for {
						if _, err := c.Recv(); err != nil {
							return
						}
					}
				}()
			}
		}()

		mt, err := ratls.NewMinter(plat, arch)
		if err != nil {
			return pt, err
		}
		signer, err := core.NewSigner()
		if err != nil {
			return pt, err
		}
		headProg := chainSweepHead()
		head, err := plat.Launch(headProg, signer)
		if err != nil {
			return pt, err
		}
		_, cert, err := mt.Mint(head)
		if err != nil {
			return pt, err
		}
		v := ratls.NewVerifier(attest.Policy{
			AllowedEnclaves: []core.Measurement{core.MeasureProgram(headProg)},
			RejectDebug:     true,
		}, 1)
		v.Probe = probe

		var smp core.SampleProbe
		if sm != nil {
			smp = sm
		}
		chain, err := nfchain.New(host, nfchain.Config{
			Stages:   stages,
			Rules:    rs,
			Batch:    batch,
			Verifier: v,
			Signer:   signer,
			Egress:   func() (*netsim.Conn, error) { return host.Dial("sink", "sink") },
			Probe:    probe,
			Series:   smp,
			Clock:    mc.Now,
		})
		if err != nil {
			return pt, err
		}
		meters = chain.Meters()
		mc.bind(meters...)

		// Admission phase: one cold verification at the first hop,
		// depth−1 warm hits at the rest, all on the shared verifier.
		sp := tr.Begin(track, "chain.admit", meters...)
		admitTally, err = chain.Admit("chain-head", cert)
		sp.End()
		if err != nil {
			return pt, err
		}
		st := v.Stats()
		pt.AdmitCold, pt.AdmitWarm = st.Cold, st.Warm
		// Drain launch + admission residue so the process phase
		// measures packet work alone.
		chain.ResetMeters()

		process = func() error {
			for i := range pkts {
				p := pkts[i]
				if err := chain.Process(&p); err != nil {
					return fmt.Errorf("eval: sgx chain packet %d: %w", i, err)
				}
			}
			return chain.Flush()
		}
		readStats = chain.Stats
		readTally = chain.Tally

	default:
		return pt, fmt.Errorf("eval: unknown chain mode %q", mode)
	}

	pt.AdmitCycles = admitTally.Cycles()

	sp := tr.Begin(track, "chain.process", meters...)
	if err := process(); err != nil {
		return pt, err
	}
	sp.End()

	// For sgx cells Tally() reads the cumulative hop meters; ResetMeters
	// above made that snapshot exactly the process phase.
	stats := readStats()
	total := readTally()
	pt.Hops = stats.Processed
	pt.Delivered = stats.Delivered
	pt.Dropped = stats.Dropped
	pt.Mirrored = stats.Mirrored
	pt.Alerts = stats.Alerts
	pt.TotalCycles = total.Cycles()
	pt.RuleCycles = core.CyclesOf(0, stats.RulesExamined*core.CostRuleEval)
	if pt.Packets > 0 {
		pt.PerPacket = pt.TotalCycles / uint64(pt.Packets)
	}
	if pt.Hops > 0 {
		pt.PerHop = pt.TotalCycles / pt.Hops
		pt.CrossPerHop = total.SGXU * core.SGXInstructionCycles / pt.Hops
	}
	if pt.TotalCycles > 0 {
		pt.RuleShare = float64(pt.RuleCycles) / float64(pt.TotalCycles)
	}

	if sm != nil {
		now := mc.Now()
		sm.GaugeAt("chain.delivered", now, pt.Delivered)
		sm.GaugeAt("chain.dropped", now, pt.Dropped)
		sm.GaugeAt("chain.alerts", now, pt.Alerts)
	}

	tr.Total(track, "run.total", admitTally.Add(total))
	reg := tr.Registry()
	reg.Add("chain.sweep.hops", pt.Hops)
	reg.Add("chain.sweep.delivered", pt.Delivered)
	reg.Add("chain.sweep.dropped", pt.Dropped)
	reg.Add("chain.sweep.alerts", pt.Alerts)
	return pt, nil
}

// RenderChainSweep prints the sweep in its canonical order.
func RenderChainSweep(w io.Writer, pts []ChainSweepPoint) {
	fmt.Fprintln(w, "Trusted NF chains: crossing amortization vs rule-engine cost, native vs SGX")
	fmt.Fprintf(w, "(%d packets per cell; sgx hops ride xcall rings + batched egress at batch ≥16; admission = 1 cold + depth−1 warm RA-TLS verifications)\n",
		chainSweepPackets)
	tw := newTab(w)
	fmt.Fprintln(tw, "mode\tdepth\tbatch\trules\thops\tdeliv\tdrop\talerts\tadmit c/w\tadmit-cyc\tper-pkt\tper-hop\tcross/hop\trule-share")
	for _, p := range pts {
		batch := fmt.Sprint(p.Batch)
		if p.Mode == "native" {
			batch = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d/%d\t%s\t%s\t%s\t%s\t%.1f%%\n",
			p.Mode, p.Depth, batch, p.Rules, p.Hops, p.Delivered, p.Dropped, p.Alerts,
			p.AdmitCold, p.AdmitWarm, fmtM(p.AdmitCycles),
			fmtM(p.PerPacket), fmtM(p.PerHop), fmtM(p.CrossPerHop), p.RuleShare*100)
	}
	tw.Flush()
}
