package eval

import (
	"testing"
)

// TestEPCSweepShape checks the paper-shaped property the sweep exists
// to demonstrate: per-op overhead is flat while working sets fit the
// EPC and grows once the working-set/share ratio crosses 1.0 — under
// every tenant count and every eviction policy.
func TestEPCSweepShape(t *testing.T) {
	pts, err := EPCSweep()
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(epcSweepGrid.tenants) * len(epcSweepGrid.ratios) * len(epcSweepGrid.policies)
	if len(pts) != wantPoints {
		t.Fatalf("got %d points, want %d", len(pts), wantPoints)
	}
	// Index by (tenants, policy) → overhead by ratio, in grid order.
	byCell := make(map[string][]EPCSweepPoint)
	for _, p := range pts {
		k := p.Policy + "/" + string(rune('0'+p.Tenants))
		byCell[k] = append(byCell[k], p)
	}
	for k, series := range byCell {
		if len(series) != len(epcSweepGrid.ratios) {
			t.Fatalf("%s: %d ratios, want %d", k, len(series), len(epcSweepGrid.ratios))
		}
		for i := 1; i < len(series); i++ {
			if series[i].Overhead < series[i-1].Overhead {
				t.Errorf("%s: overhead fell from %.2f to %.2f as ratio grew %.1f→%.1f",
					k, series[i-1].Overhead, series[i].Overhead, series[i-1].Ratio, series[i].Ratio)
			}
		}
		last := series[len(series)-1]
		first := series[0]
		if last.Overhead <= first.Overhead {
			t.Errorf("%s: no paging penalty at ratio %.1f (%.2f vs %.2f at %.1f)",
				k, last.Ratio, last.Overhead, first.Overhead, first.Ratio)
		}
		if last.Stats.Evictions == 0 || last.Stats.Reloads == 0 {
			t.Errorf("%s: oversubscribed point never paged: %+v", k, last.Stats)
		}
		if first.Stats.Evictions != 0 {
			t.Errorf("%s: working set within share still evicted: %+v", k, first.Stats)
		}
	}
}

// TestEPCSweepDeterministic checks the determinism contract: two
// independent runs — and a serial vs oversubscribed-parallel pair —
// produce identical points, stats and all.
func TestEPCSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times; slow under -short")
	}
	a, err := NewRunner(1).EPCSweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(1).EPCSweep()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRunner(8).EPCSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d diverged between serial runs:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Errorf("point %d diverged at -workers 8:\n%+v\n%+v", i, a[i], c[i])
		}
	}
}
