package eval

import (
	"reflect"
	"testing"

	"sgxnet/internal/eval/scale"
)

// TestScaleSweepSpecsValid: every canonical grid cell parses, validates,
// and covers the scale the sweep promises — a >= 4096-AS Figure 3 axis
// and a >= 1000-relay, >= 10^5-flow Tor axis.
func TestScaleSweepSpecsValid(t *testing.T) {
	var maxASes, maxRelays, maxFlows int
	for _, spec := range scaleSweepSpecs() {
		s, err := scale.ParseSpec(spec)
		if err != nil {
			t.Fatalf("grid cell %q: %v", spec, err)
		}
		switch s.Kind {
		case scale.SDN:
			if s.Hosts > maxASes {
				maxASes = s.Hosts
			}
		case scale.Tor:
			if s.Hosts > maxRelays {
				maxRelays = s.Hosts
			}
			if s.Flows > maxFlows {
				maxFlows = s.Flows
			}
		}
	}
	if maxASes < 4096 {
		t.Errorf("largest SDN cell has %d ASes, want >= 4096", maxASes)
	}
	if maxRelays < 1000 {
		t.Errorf("largest Tor cell has %d relays, want >= 1000", maxRelays)
	}
	if maxFlows < 100_000 {
		t.Errorf("largest Tor cell has %d flows, want >= 100000", maxFlows)
	}
}

// TestScaleSweepPointDeterministic: the smallest grid cell reduces to
// identical points (and identical trace spans ride on identical
// tallies) across repeated runs — the cell-level arm of the sweep's
// determinism gate; the transcript-level arm lives in cmd/sgxnet-tables.
func TestScaleSweepPointDeterministic(t *testing.T) {
	spec := scaleSweepSpecs()[0]
	a, err := scaleSweepPoint(nil, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scaleSweepPoint(nil, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("smallest cell diverges across runs:\n%+v\n%+v", a, b)
	}
	if a.Ops == 0 || a.Events == 0 || a.Overhead <= 1 {
		t.Fatalf("degenerate point: %+v", a)
	}
}
