package eval

import (
	"fmt"
	"io"
	"strings"

	"sgxnet/internal/core"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/topo"
)

// Table 4 and Figure 3: cost of SDN-based inter-domain routing, native
// vs SGX, and its growth with the number of ASes.

// CanonicalSeed is the topology seed of the paper-scale runs.
const CanonicalSeed = 42

// Table4Result holds both deployments' steady-state tallies at 30 ASes.
type Table4Result struct {
	N      int
	Native *sdnctl.RunReport
	SGX    *sdnctl.RunReport
}

// Table4 runs the 30-AS workload through both deployments.
func Table4() (*Table4Result, error) {
	return defaultRunner().Table4At(30)
}

// Table4At runs the workload at a chosen AS count, serially.
func Table4At(n int) (*Table4Result, error) {
	return NewRunner(1).Table4At(n)
}

// Table4At runs the workload at a chosen AS count, with the native and
// SGX deployments as parallel legs when the pool allows. The two legs
// build disjoint networks and meters, so their tallies are identical to
// a serial run.
func (r *Runner) Table4At(n int) (*Table4Result, error) {
	return r.table4At(n, fmt.Sprintf("table4/n=%d", n))
}

// table4At is Table4At on an explicit track namespace, so Table 4 and a
// Figure 3 point at the same AS count never collide in one trace. The
// native and SGX legs get distinct tracks — they may run concurrently.
func (r *Runner) table4At(n int, trackBase string) (*Table4Result, error) {
	tp, err := topo.Random(topo.Config{N: n, Seed: CanonicalSeed, PrefJitter: true})
	if err != nil {
		return nil, err
	}
	native, sgx, err := pair(r,
		func() (*sdnctl.RunReport, error) {
			return sdnctl.RunNativeTraced(tp, r.trace, trackBase+"/native")
		},
		func() (*sdnctl.RunReport, error) {
			return sdnctl.RunSGXTraced(tp, r.trace, trackBase+"/sgx")
		},
	)
	if err != nil {
		return nil, err
	}
	return &Table4Result{N: n, Native: native, SGX: sgx}, nil
}

// RenderTable4 prints the table with reference values.
func RenderTable4(w io.Writer, r *Table4Result) {
	fmt.Fprintf(w, "Table 4: costs of SDN-based inter-domain routing (%d ASes; measured vs paper)\n", r.N)
	tw := newTab(w)
	fmt.Fprintln(tw, "controller\tmetric\tw/o SGX\tpaper\tw/ SGX\tpaper")
	fmt.Fprintf(tw, "inter-domain\tSGX(U) inst.\t-\t-\t%d\t%d\n",
		r.SGX.InterDomain.SGXU, paper.table4["inter/sgx/sgxu"])
	fmt.Fprintf(tw, "inter-domain\tnormal inst.\t%s\t%s\t%s\t%s\n",
		fmtM(r.Native.InterDomain.Normal), fmtM(paper.table4["inter/native"]),
		fmtM(r.SGX.InterDomain.Normal), fmtM(paper.table4["inter/sgx"]))
	fmt.Fprintf(tw, "AS-local (avg)\tSGX(U) inst.\t-\t-\t%d\t%d\n",
		r.SGX.ASLocalAvg().SGXU, paper.table4["aslocal/sgx/sgxu"])
	fmt.Fprintf(tw, "AS-local (avg)\tnormal inst.\t%s\t%s\t%s\t%s\n",
		fmtM(r.Native.ASLocalAvg().Normal), fmtM(paper.table4["aslocal/native"]),
		fmtM(r.SGX.ASLocalAvg().Normal), fmtM(paper.table4["aslocal/sgx"]))
	tw.Flush()
	fmt.Fprintf(w, "inter-domain overhead: +%.0f%% (paper: +82%%); AS-local: +%.0f%% (paper: +69%%)\n",
		100*(float64(r.SGX.InterDomain.Normal)/float64(r.Native.InterDomain.Normal)-1),
		100*(float64(r.SGX.ASLocalAvg().Normal)/float64(r.Native.ASLocalAvg().Normal)-1))
}

// Figure3Point is one x-position of Figure 3.
type Figure3Point struct {
	N            int
	NativeCycles uint64
	SGXCycles    uint64
}

// Figure3 sweeps the AS count on the default (fully parallel) runner.
func Figure3(ns []int) ([]Figure3Point, error) {
	return defaultRunner().Figure3(ns)
}

// Figure3 sweeps the AS count and reports the inter-domain controller's
// cycle consumption for both deployments. Points fan out across the
// pool and merge back in input order.
func (r *Runner) Figure3(ns []int) ([]Figure3Point, error) {
	if len(ns) == 0 {
		ns = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	return mapOrdered(r, len(ns), func(i int) (Figure3Point, error) {
		res, err := r.table4At(ns[i], fmt.Sprintf("fig3/n=%d", ns[i]))
		if err != nil {
			return Figure3Point{}, err
		}
		return Figure3Point{
			N:            ns[i],
			NativeCycles: res.Native.InterDomain.Cycles(),
			SGXCycles:    res.SGX.InterDomain.Cycles(),
		}, nil
	})
}

// RenderFigure3 prints the series with a crude text plot.
func RenderFigure3(w io.Writer, pts []Figure3Point) {
	fmt.Fprintln(w, "Figure 3: CPU cycles of the inter-domain controller vs number of ASes")
	tw := newTab(w)
	fmt.Fprintln(tw, "ASes\tnative cycles\tSGX cycles\toverhead")
	var maxC uint64
	for _, p := range pts {
		if p.SGXCycles > maxC {
			maxC = p.SGXCycles
		}
	}
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%s\t%s\t+%.0f%%\n",
			p.N, fmtM(p.NativeCycles), fmtM(p.SGXCycles),
			100*(float64(p.SGXCycles)/float64(p.NativeCycles)-1))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nSGX cycles (▇) vs native (░):")
	for _, p := range pts {
		bar := func(v uint64, ch string) string {
			return strings.Repeat(ch, int(v*50/maxC))
		}
		fmt.Fprintf(w, "%3d ░%s\n    ▇%s\n", p.N, bar(p.NativeCycles, "░"), bar(p.SGXCycles, "▇"))
	}
}

// Sanity guards used by tests.
var _ = core.Tally{}
