package eval

import (
	"fmt"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/middlebox"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/tlslite"
)

// MboxRig deploys client → (n middleboxes) → TLS server, for Table 3's
// middlebox row and the §3.3 demonstrations.
type MboxRig struct {
	Net      *netsim.Network
	Client   *netsim.SimHost
	Server   *netsim.SimHost
	Mboxes   []*middlebox.Middlebox
	Endpoint *core.Enclave
	EpShim   *netsim.IOShim
	Session  *tlslite.Session

	arch *core.Signer
}

// DPIPatterns is the rule set the evaluation middleboxes compile.
var DPIPatterns = []string{"malware", "exfiltrate", "attack-signature"}

// NewMboxRig deploys the chain and completes a TLS handshake through it.
func NewMboxRig(nMbox int) (*MboxRig, error) {
	r := &MboxRig{Net: netsim.New()}
	arch, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	r.arch = arch
	newHost := func(name string) (*netsim.SimHost, error) {
		plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 512, ArchSigner: arch.MRSigner()})
		if err != nil {
			return nil, err
		}
		h, err := r.Net.AddHostWithPlatform(name, plat)
		if err != nil {
			return nil, err
		}
		if _, err := attest.NewAgent(h, arch); err != nil {
			return nil, err
		}
		return h, nil
	}
	if r.Client, err = newHost("client"); err != nil {
		return nil, err
	}
	if r.Server, err = newHost("server"); err != nil {
		return nil, err
	}
	sl, err := r.Server.Listen("tls")
	if err != nil {
		return nil, err
	}
	go sl.Serve(func(c *netsim.Conn) {
		s, err := tlslite.ServerHandshake(core.NewMeter(), c)
		if err != nil {
			c.Close()
			return
		}
		for {
			msg, err := s.Recv()
			if err != nil {
				return
			}
			if err := s.Send(append([]byte("ok:"), msg...)); err != nil {
				return
			}
		}
	})

	next := "server|tls"
	for i := nMbox - 1; i >= 0; i-- {
		host, err := newHost(fmt.Sprintf("mbox%d", i))
		if err != nil {
			return nil, err
		}
		mb, err := middlebox.Launch(host, middlebox.Config{
			Name:     fmt.Sprintf("mbox%d", i),
			NextHop:  next,
			Patterns: DPIPatterns,
		})
		if err != nil {
			return nil, err
		}
		r.Mboxes = append([]*middlebox.Middlebox{mb}, r.Mboxes...)
		next = host.Name() + "|" + middlebox.DataService
	}

	st := middlebox.NewEndpointState([]core.Measurement{middlebox.Measurement(DPIPatterns, false)})
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	enc, err := r.Client.Platform().Launch(middlebox.EndpointProgram("eval-endpoint", st), signer)
	if err != nil {
		return nil, err
	}
	r.Endpoint = enc
	r.EpShim = netsim.NewMsgShim(r.Client, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", r.EpShim)
	enc.BindHost(&mh)

	entry, svc := "server", "tls"
	if nMbox > 0 {
		entry, svc = r.Mboxes[0].Host.Name(), middlebox.DataService
	}
	conn, err := r.Client.Dial(entry, svc)
	if err != nil {
		return nil, err
	}
	r.Session, err = tlslite.ClientHandshake(core.NewMeter(), conn)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ProvisionAll attests and provisions every middlebox, returning the
// attestation count.
func (r *MboxRig) ProvisionAll() (int, error) {
	return r.ProvisionAllTraced(nil, "")
}

// ProvisionAllTraced is ProvisionAll with each middlebox's attest-and-
// provision exchange recorded as a "mbox.provision" span (the endpoint
// enclave's tally delta) and an activation instant on the given track.
func (r *MboxRig) ProvisionAllTraced(tr *obs.Trace, track string) (int, error) {
	n := 0
	for _, mb := range r.Mboxes {
		sp := tr.Begin(track, "mbox.provision", r.Endpoint.Meter())
		active, err := middlebox.Provision(r.Endpoint, r.EpShim, r.Client, mb.Host.Name(), "client", r.Session.ExportKeys())
		sp.End()
		if err != nil {
			return n, err
		}
		if !active {
			return n, fmt.Errorf("eval: %s did not activate", mb.Name)
		}
		tr.Event(track, "mbox.active", map[string]string{"mbox": mb.Name})
		n++
	}
	return n, nil
}

// AddTamperedMbox launches a modified middlebox build on a fresh SGX
// host of this rig (pointing at the server directly). Its quote will
// carry a non-whitelisted measurement.
func (r *MboxRig) AddTamperedMbox(name string) (*middlebox.Middlebox, error) {
	plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 512, ArchSigner: r.arch.MRSigner()})
	if err != nil {
		return nil, err
	}
	host, err := r.Net.AddHostWithPlatform(name, plat)
	if err != nil {
		return nil, err
	}
	if _, err := attest.NewAgent(host, r.arch); err != nil {
		return nil, err
	}
	return middlebox.Launch(host, middlebox.Config{
		Name:     name,
		NextHop:  "server|tls",
		Patterns: DPIPatterns,
		Tampered: true,
	})
}

func middleboxAttestations(tr *obs.Trace, track string, nMbox int) (int, error) {
	rig, err := NewMboxRig(nMbox)
	if err != nil {
		return 0, err
	}
	return rig.ProvisionAllTraced(tr, track)
}
