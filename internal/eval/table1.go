package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
)

// Table 1: number of instructions during remote attestation, per enclave
// role, with and without the Diffie-Hellman key exchange.

// Table1Row is one (role, DH) cell pair of Table 1.
type Table1Row struct {
	Role   string
	WithDH bool
	Tally  core.Tally
}

// attestRig is a minimal two-host attestation deployment built from the
// public package APIs.
type attestRig struct {
	net        *netsim.Network
	target     *core.Enclave
	challenger *core.Enclave
	quoting    *core.Enclave
	agentT     *attest.Agent
	tShim      *netsim.IOShim
	cShim      *netsim.IOShim
	hostT      *netsim.SimHost
	hostC      *netsim.SimHost
	cState     *attest.ChallengerState
}

func newAttestRig() (*attestRig, error) {
	r := &attestRig{net: netsim.New()}
	arch, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	mk := func(name string) (*netsim.SimHost, *attest.Agent, error) {
		plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 512, ArchSigner: arch.MRSigner()})
		if err != nil {
			return nil, nil, err
		}
		h, err := r.net.AddHostWithPlatform(name, plat)
		if err != nil {
			return nil, nil, err
		}
		agent, err := attest.NewAgent(h, arch)
		if err != nil {
			return nil, nil, err
		}
		return h, agent, nil
	}
	r.hostT, r.agentT, err = mk("target-host")
	if err != nil {
		return nil, err
	}
	r.quoting = r.agentT.QE
	r.hostC, _, err = mk("challenger-host")
	if err != nil {
		return nil, err
	}

	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	tst := attest.NewTargetState()
	tprog := &core.Program{Name: "eval-target", Version: "1", Handlers: map[string]core.Handler{}}
	attest.AddTargetHandlers(tprog, tst)
	r.target, err = r.hostT.Platform().Launch(tprog, signer)
	if err != nil {
		return nil, err
	}
	r.tShim = netsim.NewMsgShim(r.hostT, r.target.Meter())
	var mhT netsim.MultiHost
	mhT.Mount("msg.", r.tShim)
	r.target.BindHost(&mhT)

	cst := attest.NewChallengerState(attest.Policy{})
	r.cState = cst
	cprog := &core.Program{Name: "eval-challenger", Version: "1", Handlers: map[string]core.Handler{}}
	attest.AddChallengerHandlers(cprog, cst)
	r.challenger, err = r.hostC.Platform().Launch(cprog, signer)
	if err != nil {
		return nil, err
	}
	r.cShim = netsim.NewMsgShim(r.hostC, r.challenger.Meter())
	var mhC netsim.MultiHost
	mhC.Mount("msg.", r.cShim)
	r.challenger.BindHost(&mhC)
	return r, nil
}

// run performs one remote attestation and returns the per-role tallies.
func (r *attestRig) run(wantDH bool) (target, quoting, challenger core.Tally, err error) {
	return r.runTraced(nil, "", wantDH)
}

// runTraced is run with the three protocol roles recorded on their own
// tracks (<base>/target, <base>/quoting, <base>/challenger). Each role's
// track carries the protocol-round spans plus a run total equal to its
// meter tally for the run, so the analyzer's attribution closes exactly:
// every instruction a role charges, it charges inside Respond, the
// quote-service call, or Challenge.
func (r *attestRig) runTraced(tr *obs.Trace, trackBase string, wantDH bool) (target, quoting, challenger core.Tally, err error) {
	r.target.Meter().Reset()
	r.quoting.Meter().Reset()
	r.challenger.Meter().Reset()
	if tr != nil {
		r.agentT.SetTrace(tr, trackBase+"/quoting")
	}

	l, err := r.hostT.Listen("app")
	if err != nil {
		return
	}
	defer l.Close()
	errc := make(chan error, 1)
	go func() {
		sc, err := l.Accept()
		if err != nil {
			errc <- err
			return
		}
		_, err = attest.RespondTrace(tr, trackBase+"/target", r.target, r.tShim, r.hostT, sc)
		errc <- err
	}()
	conn, err := r.hostC.Dial("target-host", "app")
	if err != nil {
		return
	}
	if _, _, err = attest.ChallengeTrace(tr, trackBase+"/challenger", r.challenger, r.cShim, conn, wantDH); err != nil {
		return
	}
	if err = <-errc; err != nil {
		return
	}
	target = r.target.Meter().Snapshot()
	quoting = r.quoting.Meter().Snapshot()
	challenger = r.challenger.Meter().Snapshot()
	tr.Total(trackBase+"/target", "run.total", target)
	tr.Total(trackBase+"/quoting", "run.total", quoting)
	tr.Total(trackBase+"/challenger", "run.total", challenger)
	return target, quoting, challenger, nil
}

// Table1 measures all six cells.
func Table1() ([]Table1Row, error) {
	return Table1Traced(nil)
}

// Table1Traced is Table1 with each (DH, role) run recorded on tracks
// "table1/dh=<v>/<role>".
func Table1Traced(tr *obs.Trace) ([]Table1Row, error) {
	var rows []Table1Row
	for _, dh := range []bool{false, true} {
		rig, err := newAttestRig()
		if err != nil {
			return nil, err
		}
		tt, qt, ct, err := rig.runTraced(tr, fmt.Sprintf("table1/dh=%v", dh), dh)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Table1Row{Role: "target", WithDH: dh, Tally: tt},
			Table1Row{Role: "quoting", WithDH: dh, Tally: qt},
			Table1Row{Role: "challenger", WithDH: dh, Tally: ct},
		)
	}
	return rows, nil
}

// RenderTable1 prints the table in the paper's layout with reference
// values, plus the §5 cycle totals.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: instructions during remote attestation (measured vs paper)")
	tw := newTab(w)
	fmt.Fprintln(tw, "role\tDH\tSGX(U)\tpaper\tnormal\tpaper")
	var remoteCycles, challengerCycles uint64
	for _, r := range rows {
		key := r.Role + "/noDH"
		dh := "w/o"
		if r.WithDH {
			key, dh = r.Role+"/DH", "w/"
		}
		ref := paper.table1[key]
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\n",
			r.Role, dh, r.Tally.SGXU, ref[0], fmtM(r.Tally.Normal), fmtM(ref[1]))
		if r.WithDH {
			switch r.Role {
			case "target", "quoting":
				remoteCycles += r.Tally.Cycles()
			case "challenger":
				challengerCycles = r.Tally.Cycles()
			}
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "challenger cycles ≈ %s (paper ≈626M); remote platform ≈ %s (paper ≈8033M)\n",
		fmtM(challengerCycles), fmtM(remoteCycles))
}
