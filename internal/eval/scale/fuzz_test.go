package scale

import (
	"reflect"
	"testing"
)

// FuzzScaleSpec holds the scale-sweep spec parser to its contract on
// arbitrary input: parse either rejects with an error or yields a spec
// that (a) validates, (b) round-trips through its canonical String
// form, and (c) — when small enough to run quickly — simulates to
// completion with the exact event count the machine promises. No
// panics, no out-of-range topology indexing, ever.
func FuzzScaleSpec(f *testing.F) {
	seeds := []string{
		"sdn:ases=64,updates=4,rate=100,seed=42",
		"sdn:ases=8,updates=2,rate=50,seed=7,edges=0-1|1-2|0-7",
		"tor:relays=100,flows=64,hops=3,rate=400,seed=7,arrival=poisson",
		"tor:relays=9,flows=32,hops=8,rate=12.5,seed=0,arrival=bursty",
		// Rejections the parser must produce, not panic over:
		"sdn:ases=0,updates=4,rate=100,seed=1",                  // zero hosts
		"sdn:ases=99999999999999999999,updates=1,rate=1,seed=1", // overflow
		"sdn:ases=4,updates=1,rate=1,seed=1,edges=1-2|2-1",      // duplicate edge
		"sdn:ases=4,updates=1,rate=1,seed=1,edges=2-2",          // self loop
		"tor:relays=2,flows=10,hops=3,rate=1,seed=1,arrival=fixed",
		"tor:relays=9,flows=10,hops=3,rate=NaN,seed=1,arrival=fixed",
		"::,=,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed spec fails Validate: %q -> %+v: %v", in, s, err)
		}
		rt, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q -> %q: %v", in, s.String(), err)
		}
		if !reflect.DeepEqual(rt, s) {
			t.Fatalf("round trip diverged: %q -> %+v -> %+v", in, s, rt)
		}
		// Simulate the small cells to hold the machines to their exact
		// event-count contract; big cells would tank fuzz throughput
		// without exercising different code paths.
		if s.Hosts > 512 || s.Ops() > 2048 || len(s.Edges) > 64 {
			return
		}
		r, err := Run(s)
		if err != nil {
			t.Fatalf("valid small spec failed to run: %q: %v", in, err)
		}
		var want uint64
		switch s.Kind {
		case SDN:
			want = uint64(3*s.Ops() + 2*len(s.Edges)*s.Updates)
		case Tor:
			want = uint64(s.Flows * (s.Hops + 2))
		}
		if r.Events != want {
			t.Fatalf("%q: %d events, want %d", in, r.Events, want)
		}
		if r.Ops != s.Ops() {
			t.Fatalf("%q: %d ops completed, want %d", in, r.Ops, s.Ops())
		}
	})
}
