package scale

import (
	"reflect"
	"strings"
	"testing"

	"sgxnet/internal/eval/load"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"sdn:ases=64,updates=4,rate=100,seed=42",
		"sdn:ases=8,updates=2,rate=50,seed=7,edges=0-1|1-2|0-7",
		"tor:relays=1000,flows=100000,hops=3,rate=400,seed=7,arrival=poisson",
		"tor:relays=100,flows=64,hops=8,rate=12.5,seed=0,arrival=bursty",
		"tor:relays=3,flows=1,hops=3,rate=1,seed=9,arrival=fixed",
	}
	for _, in := range cases {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got := s.String(); got != in {
			t.Errorf("canonical form changed: %q -> %q", in, got)
		}
		rt, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.String(), err)
		}
		if !reflect.DeepEqual(rt, s) {
			t.Errorf("round trip diverged: %+v vs %+v", s, rt)
		}
	}
}

func TestParseNormalizesEdges(t *testing.T) {
	s, err := ParseSpec("sdn:ases=4,updates=1,rate=1,seed=1,edges=3-1|2-0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{1, 3}, {0, 2}}
	if !reflect.DeepEqual(s.Edges, want) {
		t.Fatalf("edges %v, want normalized %v", s.Edges, want)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ in, wantErr string }{
		{"sdn:ases=0,updates=4,rate=100,seed=1", "outside [1"},
		{"tor:relays=0,flows=10,hops=3,rate=1,seed=1,arrival=fixed", "outside [1"},
		{"sdn:ases=99999999999999999999,updates=1,rate=1,seed=1", "out of range"},
		{"sdn:ases=1048577,updates=1,rate=1,seed=1", "outside [1"},
		{"sdn:ases=1048576,updates=4,rate=1,seed=1", "exceeds"},
		{"sdn:ases=4,updates=1,rate=1,seed=1,edges=1-2|2-1", "duplicate edge"},
		{"sdn:ases=4,updates=1,rate=1,seed=1,edges=2-2", "self-loops"},
		{"sdn:ases=4,updates=1,rate=1,seed=1,edges=1-9", "outside the 4-AS"},
		{"sdn:ases=4,updates=1,rate=1,seed=1,edges=1:2", "missing '-'"},
		{"tor:relays=2,flows=10,hops=3,rate=1,seed=1,arrival=fixed", "distinct relays"},
		{"tor:relays=9,flows=10,hops=9,rate=1,seed=1,arrival=fixed", "hops 9 outside"},
		{"tor:relays=9,flows=0,hops=3,rate=1,seed=1,arrival=fixed", "flows 0 outside"},
		{"tor:relays=9,flows=10,hops=3,rate=1,seed=1,arrival=weird", "unknown arrival"},
		{"tor:relays=9,flows=10,hops=3,rate=0,seed=1,arrival=fixed", "rate 0 outside"},
		{"tor:relays=9,flows=10,hops=3,rate=1,seed=1,arrival=fixed,edges=0-1", "not allowed"},
		{"sdn:ases=4,updates=1,rate=1,seed=1,hops=3", "not allowed"},
		{"sdn:ases=4,updates=1,rate=1", "missing key \"seed\""},
		{"sdn:ases=4,ases=5,updates=1,rate=1,seed=1", "duplicate key"},
		{"blimp:ases=4", "unknown kind"},
		{"sdn", "missing ':'"},
		{"sdn:ases", "missing '='"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.in); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error containing %q", c.in, c.wantErr)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", c.in, err, c.wantErr)
		}
	}
}

// TestValidateRejectsCrossKindFields: specs built directly (not parsed)
// with fields of the other kind set must not validate.
func TestValidateRejectsCrossKindFields(t *testing.T) {
	s := Spec{Kind: SDN, Hosts: 4, Updates: 1, Rate: 1, Hops: 3}
	if err := s.Validate(); err == nil {
		t.Error("SDN spec with Hops set validated")
	}
	s = Spec{Kind: Tor, Hosts: 4, Flows: 1, Hops: 3, Rate: 1, Arrival: load.Fixed, Updates: 2}
	if err := s.Validate(); err == nil {
		t.Error("Tor spec with Updates set validated")
	}
}

// TestArrivalSpecDerivation: SDN cells pace deterministically; bursty
// Tor cells derive period/duty from the rate.
func TestArrivalSpecDerivation(t *testing.T) {
	s, err := ParseSpec("sdn:ases=8,updates=2,rate=100,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	as := s.arrivalSpec()
	if as.Kind != load.Fixed || as.N != 16 {
		t.Fatalf("sdn arrival spec %+v, want fixed n=16", as)
	}
	s, err = ParseSpec("tor:relays=9,flows=10,hops=3,rate=100,seed=1,arrival=bursty")
	if err != nil {
		t.Fatal(err)
	}
	as = s.arrivalSpec()
	if as.Kind != load.Bursty || as.Period != 640_000 || as.Duty != 0.25 {
		t.Fatalf("bursty arrival spec %+v, want period=640000 duty=0.25", as)
	}
	if err := as.Validate(); err != nil {
		t.Fatal(err)
	}
}
