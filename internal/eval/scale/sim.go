package scale

import (
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim/des"
	"sgxnet/internal/sdnctl"
)

// The state machines. One Run drives every operation of a cell through
// a single-threaded des.Kernel: hosts are array slots (a busy-until
// clock each), flows are packed uint64 event arguments, and the only
// allocations on the hot path are the kernel's heap slots — no
// goroutines, no channels, no per-flow structs. Service times come
// from the same instruction-cost model the rig-based tables use
// (core.CyclesOf over Table 1/2/4 constants), so a scale cell's
// per-op numbers are directly comparable to the small-topology rigs'.
//
// Virtual timing follows the SGX deployment — that is the system the
// paper proposes to run — while a native tally rides along on every
// charge so the rendered table can report the per-op overhead factor.

// Event argument packing: | stage:8 | aux:24 | idx:32 |. idx is the
// operation (update or flow) index; aux carries the hop number or the
// peer-edge cursor.
const (
	argIdxBits = 32
	argAuxBits = 24
	argIdxMask = 1<<argIdxBits - 1
	argAuxMask = 1<<argAuxBits - 1
)

func pack(stage uint8, aux int, idx int) uint64 {
	return uint64(stage)<<(argIdxBits+argAuxBits) | uint64(aux&argAuxMask)<<argIdxBits | uint64(idx&argIdxMask)
}

func unpack(arg uint64) (stage uint8, aux int, idx int) {
	return uint8(arg >> (argIdxBits + argAuxBits)), int(arg >> argIdxBits & argAuxMask), int(arg & argIdxMask)
}

// Modeled per-stage instruction costs. SDN anchors to the sdnctl/Table
// 4 constants: one update adopts a route and weighs a dozen candidates;
// the enclave build adds per-packet I/O (Table 2) and, on every other
// update, a dynamic-allocation enclave exit (the paper's named Table 4
// overhead source). Tor anchors to Table 2: one 512-byte onion cell
// AES pass plus routing per hop, with the in-enclave build paying the
// per-packet copy cost and a 1/16-amortized I/O-call fixed cost
// (cells batch onto the wire, DESIGN.md §6).
const (
	sdnEvalsPerUpdate = 12
	sdnCtrlNormal     = sdnctl.CostRouteUpdate + sdnEvalsPerUpdate*sdnctl.CostRouteEval + sdnctl.CostPredicateEval
	sdnPeerNormal     = 50_000 // peer gossip ingest: parse + RIB touch

	torCellBytes  = 512
	torHopNormal  = torCellBytes*core.CostAESBlockPerByte + 1_200 // AES pass + circuit-table routing
	torIOBatch    = 16
	torHopSGXNorm = core.CostIOPerPacket + core.CostIOCallFixed/torIOBatch

	// enclavePacketNormal / enclavePacketSGXU is the Table 2 price of
	// one unbatched in-enclave packet I/O call, charged by the SDN
	// build on every controller ingress/egress.
	enclavePacketNormal = core.CostIOCallFixed + core.CostIOPerPacket
	enclavePacketSGXU   = core.SGXInstIOCallFixed + core.SGXInstIOPerPacket

	// Link latency: 50µs base plus up to 200µs of seeded per-link
	// spread, in virtual cycles (1 cycle = 1ns at the modeled clock).
	linkLatBase   = 50_000
	linkLatSpread = 200_000
)

// Result is one completed cell.
type Result struct {
	Spec     Spec
	Ops      int    // operations completed (SDN updates / Tor flows)
	Events   uint64 // kernel events processed
	PeakLive int    // peak simultaneously-scheduled events (backlog)
	Makespan uint64 // virtual cycles from first arrival to last event

	// Instruction tallies for the whole cell, both builds, charged
	// identically except for the enclave surcharges.
	Native core.Tally
	SGX    core.Tally

	// LatencySum accumulates per-op completion latency (completion
	// minus arrival, virtual cycles) for MeanLatency.
	LatencySum uint64
}

// PerOpNativeCycles is the native build's mean modeled cycles per op.
func (r Result) PerOpNativeCycles() uint64 {
	if r.Ops == 0 {
		return 0
	}
	return r.Native.Cycles() / uint64(r.Ops)
}

// PerOpSGXCycles is the SGX build's mean modeled cycles per op.
func (r Result) PerOpSGXCycles() uint64 {
	if r.Ops == 0 {
		return 0
	}
	return r.SGX.Cycles() / uint64(r.Ops)
}

// Overhead is the SGX/native modeled-cycle ratio — the scale sweep's
// Figure 3 quantity.
func (r Result) Overhead() float64 {
	if n := r.Native.Cycles(); n > 0 {
		return float64(r.SGX.Cycles()) / float64(n)
	}
	return 0
}

// MeanLatency is the mean op completion latency in virtual cycles.
func (r Result) MeanLatency() uint64 {
	if r.Ops == 0 {
		return 0
	}
	return r.LatencySum / uint64(r.Ops)
}

// Run simulates one cell to completion. Deterministic: the same spec
// produces a byte-identical Result on every run, at any worker count —
// the kernel is private to the call and single-threaded.
func Run(sp Spec) (Result, error) {
	return RunSampled(sp, nil)
}

// RunSampled is Run with the windowed-metrics layer attached: the
// kernel samples events-per-window and heap backlog at every pop, and
// the SDN machine additionally samples the serialized inter-domain
// controller's queueing delay (busy-until minus now — the signal that
// grows without bound when the controller saturates). Timestamps are
// the kernel's own virtual clock, so the series are as deterministic as
// the Result. sm may be nil (identical to Run).
func RunSampled(sp Spec, sm des.Sampler) (Result, error) {
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	arr, err := sp.arrivalSpec().Times()
	if err != nil {
		return Result{}, err
	}
	k := des.New()
	k.SetSeries(sm)
	var m machine
	switch sp.Kind {
	case SDN:
		m = newSDNSim(sp, arr, k, sm)
	case Tor:
		m = newTorSim(sp, arr, k)
	}
	// Lazy arrival injection: each arrival event schedules the next, so
	// the heap holds only the genuine in-flight backlog — PeakLive
	// measures queueing, not the length of the input schedule.
	if len(arr) > 0 {
		k.At(arr[0], m, pack(stageArrive, 0, 0))
	}
	st := k.Run()
	res := m.result()
	res.Spec = sp
	res.Events = st.Processed
	res.PeakLive = st.PeakLive
	res.Makespan = st.Now
	if res.Ops != sp.Ops() {
		return res, fmt.Errorf("scale: %s: completed %d of %d ops", sp, res.Ops, sp.Ops())
	}
	return res, nil
}

type machine interface {
	des.Handler
	result() Result
}

// Event stages, shared by both machines (aux disambiguates).
const (
	stageArrive = iota // op enters the network (client/AS send)
	stageServe         // SDN: inter-domain controller; Tor: relay hop
	stageLocal         // SDN: AS-local install
	stagePeer          // SDN: peer gossip ingest
	stageDone          // Tor: flow completion at the client
)

// tally accumulates both builds without Meter's striping — the
// machines are single-threaded by construction.
type tally struct {
	nativeSGXU, nativeNorm uint64
	sgxSGXU, sgxNorm       uint64
}

// charge records a stage on both builds and returns the SGX build's
// cycle cost, which is what advances the virtual clock.
func (t *tally) charge(bothNorm, sgxExtraNorm, sgxExtraU uint64) uint64 {
	t.nativeNorm += bothNorm
	t.sgxNorm += bothNorm + sgxExtraNorm
	t.sgxSGXU += sgxExtraU
	return core.CyclesOf(sgxExtraU, bothNorm+sgxExtraNorm)
}

// mix is a splitmix64-style hash for seeded per-link parameters —
// stable across Go releases, unlike math/rand.
func mix(seed, x uint64) uint64 {
	z := seed + x*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// linkLat is the seeded propagation delay of link key.
func linkLat(seed, key uint64) uint64 {
	return linkLatBase + mix(seed, key)%linkLatSpread
}

// --- SDN machine ---

// sdnSim drives Hosts*Updates route updates: AS (idx mod Hosts) sends
// update idx to the single inter-domain controller (a serialized
// resource — requests queue on its busy-until clock), the decision
// returns to the AS-local controller for validated install, and each
// peering edge incident to the AS ingests a gossip notification.
type sdnSim struct {
	spec Spec
	arr  []uint64
	k    *des.Kernel

	ctrlFree uint64   // inter-domain controller busy-until
	asFree   []uint64 // per-AS-local-controller busy-until
	adj      [][]int  // peer list per AS
	sm       des.Sampler

	t          tally
	ops        int
	latencySum uint64
}

func newSDNSim(sp Spec, arr []uint64, k *des.Kernel, sm des.Sampler) *sdnSim {
	s := &sdnSim{spec: sp, arr: arr, k: k, sm: sm, asFree: make([]uint64, sp.Hosts)}
	s.adj = make([][]int, sp.Hosts)
	for _, e := range sp.Edges {
		s.adj[e.A] = append(s.adj[e.A], e.B)
		s.adj[e.B] = append(s.adj[e.B], e.A)
	}
	return s
}

func (s *sdnSim) OnEvent(now uint64, arg uint64) {
	stage, aux, idx := unpack(arg)
	as := idx % s.spec.Hosts
	switch stage {
	case stageArrive:
		if idx+1 < len(s.arr) {
			s.k.At(s.arr[idx+1], s, pack(stageArrive, 0, idx+1))
		}
		// The AS ships the update: one packet up to the controller.
		s.k.At(now+linkLat(s.spec.Seed, uint64(as)), s, pack(stageServe, 0, idx))
	case stageServe:
		// Decision work at the serialized inter-domain controller, with
		// the enclave paying packet ingress I/O and — every other
		// update — a dynamic-allocation enclave exit (Table 4's named
		// overhead source; the allocator pools two updates per refill,
		// mirroring sdnctl's allocation-rate calibration).
		extraNorm, extraU := uint64(enclavePacketNormal), uint64(enclavePacketSGXU)
		if idx%2 == 1 {
			extraNorm += core.CostEnclaveAllocFixed
			extraU += core.SGXInstEnclaveAlloc
		}
		svc := s.t.charge(sdnCtrlNormal, extraNorm, extraU)
		start := max(now, s.ctrlFree)
		s.ctrlFree = start + svc
		if s.sm != nil {
			// Controller backlog = how far busy-until runs ahead of the
			// arriving update; the series that diverges when the serialized
			// inter-domain controller saturates.
			s.sm.CountAt("ctrl.updates", now, 1)
			s.sm.GaugeAt("ctrl.backlog_cycles", now, s.ctrlFree-now)
		}
		s.k.At(s.ctrlFree+linkLat(s.spec.Seed, uint64(as)), s, pack(stageLocal, 0, idx))
	case stageLocal:
		// Validated install at the AS-local controller (§6: in-enclave
		// code must not trust data crossing the boundary, so the SGX
		// build validates every route before install).
		extraNorm := uint64(sdnctl.CostRouteValidate + enclavePacketNormal)
		extraU := uint64(enclavePacketSGXU)
		if idx%2 == 1 { // route entries allocate two per chunk
			extraNorm += core.CostEnclaveAllocFixed
			extraU += core.SGXInstEnclaveAlloc
		}
		svc := s.t.charge(sdnctl.CostRouteInstall, extraNorm, extraU)
		start := max(now, s.asFree[as])
		s.asFree[as] = start + svc
		s.ops++
		s.latencySum += start + svc - s.arr[idx]
		if len(s.adj[as]) > 0 {
			s.k.At(start+svc+linkLat(s.spec.Seed, uint64(as)<<20), s, pack(stagePeer, 0, idx))
		}
	case stagePeer:
		peer := s.adj[as][aux]
		svc := s.t.charge(sdnPeerNormal, enclavePacketNormal, enclavePacketSGXU)
		start := max(now, s.asFree[peer])
		s.asFree[peer] = start + svc
		if aux+1 < len(s.adj[as]) {
			s.k.At(now+linkLat(s.spec.Seed, uint64(as)<<20+uint64(aux+1)), s, pack(stagePeer, aux+1, idx))
		}
	}
}

func (s *sdnSim) result() Result {
	return Result{
		Ops:        s.ops,
		Native:     core.Tally{SGXU: s.t.nativeSGXU, Normal: s.t.nativeNorm},
		SGX:        core.Tally{SGXU: s.t.sgxSGXU, Normal: s.t.sgxNorm},
		LatencySum: s.latencySum,
	}
}

// --- Tor machine ---

// torSim drives Flows circuits: each flow's path is Hops distinct
// relays drawn from a seeded stream, each hop decrypts one onion layer
// (AES over the cell) and routes it onward, relays serialize on their
// busy-until clocks, and the completion event returns to the client.
type torSim struct {
	spec Spec
	arr  []uint64
	k    *des.Kernel

	relayFree []uint64
	path      []int // scratch, refilled per event from the seed

	t          tally
	ops        int
	latencySum uint64
}

func newTorSim(sp Spec, arr []uint64, k *des.Kernel) *torSim {
	return &torSim{spec: sp, arr: arr, k: k,
		relayFree: make([]uint64, sp.Hosts), path: make([]int, sp.Hops)}
}

// fillPath regenerates flow idx's circuit into t.path: Hops distinct
// relays by seeded rejection sampling (bounded: after 64 collisions it
// scans forward from the candidate, still deterministic).
func (t *torSim) fillPath(idx int) {
	h := t.spec.Hosts
	for i := 0; i < t.spec.Hops; i++ {
		r := int(mix(t.spec.Seed^0x746f72, uint64(idx)<<8|uint64(i)) % uint64(h))
		for try := 0; contains(t.path[:i], r); try++ {
			if try < 64 {
				r = int(mix(t.spec.Seed^0x746f72, uint64(idx)<<8|uint64(i)|uint64(try+1)<<40) % uint64(h))
			} else {
				r = (r + 1) % h
			}
		}
		t.path[i] = r
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (t *torSim) OnEvent(now uint64, arg uint64) {
	stage, aux, idx := unpack(arg)
	switch stage {
	case stageArrive:
		if idx+1 < len(t.arr) {
			t.k.At(t.arr[idx+1], t, pack(stageArrive, 0, idx+1))
		}
		t.fillPath(idx)
		// Client onion-wraps and ships the cell to the guard.
		t.k.At(now+linkLat(t.spec.Seed, uint64(t.path[0])), t, pack(stageServe, 0, idx))
	case stageServe:
		t.fillPath(idx)
		r := t.path[aux]
		// One onion layer at relay r: AES over the cell plus routing;
		// the enclave adds the per-packet copy and the batch-amortized
		// I/O call (Table 2, cells batch torIOBatch per crossing).
		svc := t.t.charge(torHopNormal, torHopSGXNorm, core.SGXInstIOPerPacket)
		start := max(now, t.relayFree[r])
		t.relayFree[r] = start + svc
		if aux+1 < t.spec.Hops {
			next := t.path[aux+1]
			t.k.At(start+svc+linkLat(t.spec.Seed, uint64(r)<<20|uint64(next)), t,
				pack(stageServe, aux+1, idx))
		} else {
			// Exit leg: the reply rides the symmetric return path, which
			// adds latency but no additional modeled relay work here.
			t.k.At(start+svc+linkLat(t.spec.Seed, uint64(r)), t, pack(stageDone, 0, idx))
		}
	case stageDone:
		t.ops++
		t.latencySum += now - t.arr[idx]
	}
}

func (t *torSim) result() Result {
	return Result{
		Ops:        t.ops,
		Native:     core.Tally{SGXU: t.t.nativeSGXU, Normal: t.t.nativeNorm},
		SGX:        core.Tally{SGXU: t.t.sgxSGXU, Normal: t.t.sgxNorm},
		LatencySum: t.latencySum,
	}
}
