// Package scale holds the discrete-event scale sweep: thousands of
// ASes and relays, up to millions of flows, simulated as lightweight
// state machines on the des kernel instead of goroutine-per-host rigs.
//
// A sweep cell is described by a compact seeded spec string (the same
// convention as internal/eval/load's arrival specs): the string alone
// reproduces the topology, the flow schedule, and every cost charged,
// so it can appear verbatim in rendered tables and trace track names.
// Two grammars exist, one per modeled application:
//
//	sdn:ases=64,updates=4,rate=100,seed=42[,edges=0-1|1-2]
//	tor:relays=1000,flows=100000,hops=3,rate=400,seed=7,arrival=poisson
//
// The parser is strict (exact key set per kind, each key once) and is
// fuzzed: every rejection is an error, never a panic, and every
// accepted spec round-trips through its canonical String form.
package scale

import (
	"fmt"
	"strconv"
	"strings"

	"sgxnet/internal/eval/load"
)

// Kind selects the modeled application.
type Kind uint8

const (
	// SDN models the paper's §3.1 controllers at scale: every update is
	// routed through one serialized inter-domain controller, installed
	// at its AS-local controller, and optionally gossiped to peers.
	SDN Kind = iota
	// Tor models §3.2 at scale: each flow traverses a fixed-length
	// circuit of relays, every hop paying the in-enclave cell cost.
	Tor
)

func (k Kind) String() string {
	switch k {
	case SDN:
		return "sdn"
	case Tor:
		return "tor"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec bounds. Host counts are capped well above the sweep grid but
// low enough that adjacency slices and per-host clocks stay cheap;
// the flow/op count inherits load.MaxRequests so a schedule is always
// materializable.
const (
	// MaxHosts bounds ASes (SDN) and relays (Tor).
	MaxHosts = 1 << 20
	// MaxUpdates bounds per-AS update rounds.
	MaxUpdates = 1 << 12
	// MaxHops bounds Tor circuit length.
	MaxHops = 8
	// MaxEdges bounds the explicit SDN peering list.
	MaxEdges = 1 << 16
)

// Edge is one undirected AS-AS peering link, normalized A < B.
type Edge struct{ A, B int }

// Spec is one scale-sweep cell. The zero value is not valid; build one
// directly or with ParseSpec.
type Spec struct {
	Kind  Kind
	Hosts int     // SDN: AS count ("ases"); Tor: relay count ("relays")
	Rate  float64 // mean arrivals per Mcycle, load.ArrivalSpec bounds
	Seed  uint64  // seeds topology latencies, paths, and arrival draws

	// SDN-only.
	Updates int    // update rounds per AS; total ops = Hosts*Updates
	Edges   []Edge // optional peering links gossiped after installs

	// Tor-only.
	Flows   int       // circuits driven through the network
	Hops    int       // relays per circuit
	Arrival load.Kind // arrival process for the flow schedule
}

// Ops is the number of completable operations the cell drives: SDN
// route updates or Tor flows.
func (s Spec) Ops() int {
	if s.Kind == SDN {
		return s.Hosts * s.Updates
	}
	return s.Flows
}

// String renders the canonical spec form; ParseSpec(s.String()) is
// deep-equal to s for every valid spec (held by the fuzz target).
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	switch s.Kind {
	case SDN:
		fmt.Fprintf(&b, ":ases=%d,updates=%d,rate=%s,seed=%d",
			s.Hosts, s.Updates, strconv.FormatFloat(s.Rate, 'g', -1, 64), s.Seed)
		if len(s.Edges) > 0 {
			b.WriteString(",edges=")
			for i, e := range s.Edges {
				if i > 0 {
					b.WriteByte('|')
				}
				fmt.Fprintf(&b, "%d-%d", e.A, e.B)
			}
		}
	case Tor:
		fmt.Fprintf(&b, ":relays=%d,flows=%d,hops=%d,rate=%s,seed=%d,arrival=%s",
			s.Hosts, s.Flows, s.Hops, strconv.FormatFloat(s.Rate, 'g', -1, 64), s.Seed, s.Arrival)
	}
	return b.String()
}

// arrivalSpec derives the cell's flow schedule spec. SDN cells pace
// deterministically (the updates themselves are the randomness that
// matters); Tor cells use the spec's arrival process. Bursty shape
// parameters are derived from the rate so the spec string stays small:
// a 64-mean-interarrival period at 25% duty.
func (s Spec) arrivalSpec() load.ArrivalSpec {
	as := load.ArrivalSpec{Rate: s.Rate, N: s.Ops(), Seed: s.Seed}
	if s.Kind == SDN {
		as.Kind = load.Fixed
		return as
	}
	as.Kind = s.Arrival
	if s.Arrival == load.Bursty {
		period := uint64(64 * 1e6 / s.Rate)
		if period < 1 {
			period = 1
		}
		if period > load.MaxPeriod {
			period = load.MaxPeriod
		}
		as.Period = period
		as.Duty = 0.25
	}
	return as
}

// Validate checks the spec against the documented bounds. Every
// rejection is an error, never a panic — the parser feeds on fuzzed
// input, and a zero-host topology or an edge list referencing absent
// ASes must die here, not index out of range mid-simulation.
func (s Spec) Validate() error {
	if s.Kind > Tor {
		return fmt.Errorf("scale: unknown kind %d", s.Kind)
	}
	if s.Hosts < 1 || s.Hosts > MaxHosts {
		return fmt.Errorf("scale: host count %d outside [1, %d]", s.Hosts, MaxHosts)
	}
	switch s.Kind {
	case SDN:
		if s.Updates < 1 || s.Updates > MaxUpdates {
			return fmt.Errorf("scale: updates %d outside [1, %d]", s.Updates, MaxUpdates)
		}
		if s.Hosts > load.MaxRequests/s.Updates {
			return fmt.Errorf("scale: %d ASes x %d updates exceeds %d ops", s.Hosts, s.Updates, load.MaxRequests)
		}
		if len(s.Edges) > MaxEdges {
			return fmt.Errorf("scale: %d edges exceeds %d", len(s.Edges), MaxEdges)
		}
		seen := make(map[Edge]bool, len(s.Edges))
		for _, e := range s.Edges {
			if e.A >= e.B {
				return fmt.Errorf("scale: edge %d-%d not normalized (want a < b; self-loops forbidden)", e.A, e.B)
			}
			if e.A < 0 || e.B >= s.Hosts {
				return fmt.Errorf("scale: edge %d-%d outside the %d-AS topology", e.A, e.B, s.Hosts)
			}
			if seen[e] {
				return fmt.Errorf("scale: duplicate edge %d-%d", e.A, e.B)
			}
			seen[e] = true
		}
		if s.Flows != 0 || s.Hops != 0 || s.Arrival != 0 {
			return fmt.Errorf("scale: tor-only fields set on an sdn spec")
		}
	case Tor:
		if s.Hops < 1 || s.Hops > MaxHops {
			return fmt.Errorf("scale: hops %d outside [1, %d]", s.Hops, MaxHops)
		}
		if s.Hosts < s.Hops {
			return fmt.Errorf("scale: %d relays cannot form a %d-hop circuit of distinct relays", s.Hosts, s.Hops)
		}
		if s.Flows < 1 || s.Flows > load.MaxRequests {
			return fmt.Errorf("scale: flows %d outside [1, %d]", s.Flows, load.MaxRequests)
		}
		if s.Arrival > load.Fixed {
			return fmt.Errorf("scale: unknown arrival kind %d", s.Arrival)
		}
		if s.Updates != 0 || len(s.Edges) != 0 {
			return fmt.Errorf("scale: sdn-only fields set on a tor spec")
		}
	}
	// The derived arrival spec enforces the rate bounds and keeps the
	// schedule's timestamps under load.MaxScheduleCycles.
	if err := s.arrivalSpec().Validate(); err != nil {
		return fmt.Errorf("scale: %v", err)
	}
	return nil
}

// ParseSpec parses the canonical "kind:k=v,..." form. Keys are strict:
// each kind accepts exactly its canonical key set, once each.
func ParseSpec(in string) (Spec, error) {
	var s Spec
	head, rest, ok := strings.Cut(in, ":")
	if !ok {
		return s, fmt.Errorf("scale: spec %q: missing ':'", in)
	}
	var required []string
	allowed := make(map[string]bool)
	switch head {
	case "sdn":
		s.Kind = SDN
		required = []string{"ases", "updates", "rate", "seed"}
		allowed["edges"] = true
	case "tor":
		s.Kind = Tor
		required = []string{"relays", "flows", "hops", "rate", "seed", "arrival"}
	default:
		return s, fmt.Errorf("scale: unknown kind %q", head)
	}
	for _, k := range required {
		allowed[k] = true
	}
	seen := make(map[string]bool)
	for _, field := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("scale: spec field %q: missing '='", field)
		}
		if !allowed[k] {
			return s, fmt.Errorf("scale: key %q not allowed for kind %s", k, s.Kind)
		}
		if seen[k] {
			return s, fmt.Errorf("scale: duplicate key %q", k)
		}
		seen[k] = true
		var err error
		switch k {
		case "ases", "relays":
			s.Hosts, err = strconv.Atoi(v)
		case "updates":
			s.Updates, err = strconv.Atoi(v)
		case "flows":
			s.Flows, err = strconv.Atoi(v)
		case "hops":
			s.Hops, err = strconv.Atoi(v)
		case "rate":
			s.Rate, err = strconv.ParseFloat(v, 64)
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "arrival":
			switch v {
			case "poisson":
				s.Arrival = load.Poisson
			case "bursty":
				s.Arrival = load.Bursty
			case "fixed":
				s.Arrival = load.Fixed
			default:
				err = fmt.Errorf("unknown arrival kind %q", v)
			}
		case "edges":
			s.Edges, err = parseEdges(v)
		}
		if err != nil {
			return s, fmt.Errorf("scale: spec field %q: %v", field, err)
		}
	}
	for _, k := range required {
		if !seen[k] {
			return s, fmt.Errorf("scale: spec %q: missing key %q", in, k)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// parseEdges parses "a-b|c-d|...", normalizing each pair to A < B.
// Duplicate and out-of-range detection happens in Validate, where the
// host count is known.
func parseEdges(v string) ([]Edge, error) {
	parts := strings.Split(v, "|")
	edges := make([]Edge, 0, len(parts))
	for _, p := range parts {
		as, bs, ok := strings.Cut(p, "-")
		if !ok {
			return nil, fmt.Errorf("edge %q: missing '-'", p)
		}
		a, err := strconv.Atoi(as)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %v", p, err)
		}
		b, err := strconv.Atoi(bs)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %v", p, err)
		}
		if a > b {
			a, b = b, a
		}
		edges = append(edges, Edge{A: a, B: b})
	}
	return edges, nil
}
