package scale

import (
	"reflect"
	"testing"
)

func mustRun(t *testing.T, spec string) Result {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRunSDNShape: the SDN machine's event count is exact — three
// events per update (arrive, controller, install) plus one gossip
// ingest per incident peering edge per update — and the modeled
// overhead sits in the paper's Figure 3 band.
func TestRunSDNShape(t *testing.T) {
	r := mustRun(t, "sdn:ases=8,updates=2,rate=100,seed=42,edges=0-1|1-2|2-3")
	ops := 16
	if r.Ops != ops {
		t.Fatalf("ops %d, want %d", r.Ops, ops)
	}
	// Each edge contributes two adjacency entries, each visited once
	// per update round of its AS.
	wantEvents := uint64(3*ops + 2*2*3)
	if r.Events != wantEvents {
		t.Fatalf("events %d, want %d", r.Events, wantEvents)
	}
	if r.PeakLive < 1 || r.Makespan == 0 || r.MeanLatency() == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if ov := r.Overhead(); ov < 1.2 || ov > 3 {
		t.Fatalf("SDN overhead %.2f outside the plausible Figure 3 band", ov)
	}
	if r.Native.SGXU != 0 {
		t.Fatalf("native build charged %d SGX instructions", r.Native.SGXU)
	}
	// No edges -> exactly 3 events per op.
	r = mustRun(t, "sdn:ases=8,updates=2,rate=100,seed=42")
	if r.Events != uint64(3*ops) {
		t.Fatalf("edge-free events %d, want %d", r.Events, 3*ops)
	}
}

// TestRunTorShape: exactly hops+2 events per flow, every flow
// completes, and the per-hop enclave I/O surcharge shows up as a
// multiple of the native cost.
func TestRunTorShape(t *testing.T) {
	r := mustRun(t, "tor:relays=20,flows=500,hops=3,rate=400,seed=7,arrival=poisson")
	if r.Ops != 500 {
		t.Fatalf("ops %d, want 500", r.Ops)
	}
	if want := uint64(500 * (3 + 2)); r.Events != want {
		t.Fatalf("events %d, want %d", r.Events, want)
	}
	if ov := r.Overhead(); ov < 2 || ov > 8 {
		t.Fatalf("Tor overhead %.2f outside the plausible band", ov)
	}
	if r.MeanLatency() == 0 || r.Makespan == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

// TestRunDeterministic: byte-identical results across repeated runs of
// the same spec — the property the sweep's goldens lean on.
func TestRunDeterministic(t *testing.T) {
	for _, spec := range []string{
		"sdn:ases=64,updates=4,rate=100,seed=42,edges=0-1|1-2|2-3|3-0",
		"tor:relays=100,flows=2000,hops=3,rate=400,seed=7,arrival=bursty",
	} {
		a := mustRun(t, spec)
		b := mustRun(t, spec)
		if a.Spec.String() != b.Spec.String() {
			t.Fatalf("%s: spec diverged", spec)
		}
		a.Spec, b.Spec = Spec{}, Spec{}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: results diverge:\n%+v\n%+v", spec, a, b)
		}
	}
}

// TestRunPathsDistinct: every simulated circuit uses distinct relays,
// including the tight Hosts == Hops corner where rejection sampling
// falls back to scanning.
func TestRunPathsDistinct(t *testing.T) {
	s, err := ParseSpec("tor:relays=3,flows=50,hops=3,rate=10,seed=5,arrival=fixed")
	if err != nil {
		t.Fatal(err)
	}
	sim := newTorSim(s, nil, nil)
	for idx := 0; idx < 50; idx++ {
		sim.fillPath(idx)
		seen := map[int]bool{}
		for _, r := range sim.path {
			if r < 0 || r >= s.Hosts {
				t.Fatalf("flow %d: relay %d out of range", idx, r)
			}
			if seen[r] {
				t.Fatalf("flow %d: relay %d repeated in path %v", idx, r, sim.path)
			}
			seen[r] = true
		}
	}
}

// TestRunBacklogIsGenuine: lazy arrival injection keeps the heap at
// the real in-flight backlog, not the schedule length — a cell whose
// ops arrive slower than they drain must show a tiny peak.
func TestRunBacklogIsGenuine(t *testing.T) {
	// 1 op per 100 Mcycles; each op needs ~20 Mcycles of controller
	// time, so nothing ever queues behind the arrival chain.
	r := mustRun(t, "sdn:ases=16,updates=2,rate=0.01,seed=1")
	if r.PeakLive > 3 {
		t.Fatalf("peak live %d for an idle cell — arrival injection is eager", r.PeakLive)
	}
}
