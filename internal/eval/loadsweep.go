package eval

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"sgxnet/internal/core"
	"sgxnet/internal/eval/load"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
	"sgxnet/internal/xcall"
)

// Open-loop load sweep: the tail-latency experiment the paper's
// closed-loop per-op averages cannot answer. Each point drives one of
// the application rigs (tor circuit gets, tlslite record exchanges,
// sdnctl route fetches) with a seeded arrival process on the modeled
// cycle clock, queues requests FIFO against the rig's metered service
// times, and reduces per-request latency (queue wait + service) to
// p50/p99/p999 plus SLO-violation counts.
//
// Axes beyond app × arrival × offered load:
//
//   - epc=R composes the PR-4 pager: the TLS engine runs on a small EPC
//     with a working set of R × the pageable budget, so R > 1.0 puts
//     EWB/ELDU traffic on the request path.
//   - xcall=B composes the PR-5 rings: the engine's crossings batch at
//     B, so the drain bill lands on whichever request triggers it — an
//     amortization-induced tail.
//   - +cpu / +cross / +epc add a Stress-SGX-style antagonist tenant as
//     a second arrival stream through the same FIFO server, stressing
//     compute, enclave transitions, or the shared EPC respectively.
//
// Rates are expressed as utilization rho against the point's own
// calibrated mean service time, so every cell sits at a controlled
// operating point regardless of how expensive its app is; the SLO is
// 20× mean service — generous at rho 0.5, routinely blown at 0.95.

// loadSweepCalReqs is the calibration prefix: requests served before
// the measured run to estimate mean service time (and warm caches,
// pagers, and rings so the run is steady-state).
const loadSweepCalReqs = 16

// loadSweepSLOFactor: SLO = factor × calibrated mean service.
const loadSweepSLOFactor = 20

// loadAntagonistUtil is the antagonist stream's offered utilization.
const loadAntagonistUtil = 0.25

// loadSweepN is the measured request count per app: tls and tor exceed
// the histogram's exact threshold (bucketed percentiles), sdn stays
// under it (exact percentiles) — both reduction regimes are golden-pinned.
var loadSweepN = map[string]int{"tor": 600, "tls": 768, "sdn": 480}

// loadCell is one grid cell.
type loadCell struct {
	app     string // tor | tls | sdn
	arrival string // poisson | bursty
	rho     float64
	compose string // "-", "epc=R", "xcall=B", "+cpu", "+cross", "+epc"
}

// loadSweepCells is the canonical grid: the base app × arrival × rho
// block, the pager and ring composition axes, and the antagonist
// interference points.
func loadSweepCells() []loadCell {
	var cells []loadCell
	for _, app := range []string{"tor", "tls", "sdn"} {
		for _, arr := range []string{"poisson", "bursty"} {
			for _, rho := range []float64{0.5, 0.8, 0.95} {
				cells = append(cells, loadCell{app, arr, rho, "-"})
			}
		}
	}
	for _, r := range []float64{0.5, 1.5} {
		cells = append(cells, loadCell{"tls", "poisson", 0.8, fmt.Sprintf("epc=%.1f", r)})
	}
	for _, b := range []int{4, 16} {
		cells = append(cells, loadCell{"tls", "poisson", 0.8, fmt.Sprintf("xcall=%d", b)})
	}
	cells = append(cells,
		loadCell{"tor", "poisson", 0.5, "+cpu"},
		loadCell{"tor", "poisson", 0.5, "+cross"},
		loadCell{"tls", "poisson", 0.5, "+epc"},
	)
	return cells
}

// LoadSweepPoint is one cell's reduction.
type LoadSweepPoint struct {
	App     string
	Arrival string
	Rho     float64
	Compose string
	N       int

	Rate     float64 // offered load, requests per Mcycle
	MeanSvc  uint64  // calibrated mean service, cycles
	SLO      uint64  // latency SLO, cycles
	P50      uint64
	P99      uint64
	P999     uint64
	Max      uint64
	Viol     uint64  // victim-stream SLO violations
	Util     float64 // realized server utilization (service / makespan)
	Bucketed bool    // percentile regime: bucketed vs exact
}

// LoadSweep runs the full grid on the default pool.
func LoadSweep() ([]LoadSweepPoint, error) {
	return defaultRunner().LoadSweep()
}

// LoadSweep runs every grid point as an independent scenario on the
// pool. Each point builds its own deployment, calibrates its own rate,
// and reduces its own histogram, so the merged table is byte-identical
// at any worker count.
func (r *Runner) LoadSweep() ([]LoadSweepPoint, error) {
	cells := loadSweepCells()
	return mapOrdered(r, len(cells), func(i int) (LoadSweepPoint, error) {
		return loadSweepPoint(r.trace, r.series, cells[i], loadSweepN[cells[i].app])
	})
}

// loadSeed derives a stable per-track schedule seed.
func loadSeed(track string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(track))
	return h.Sum64()
}

// buildLoadRigs constructs the victim rig (and antagonist, for "+"
// compositions) for a cell. A non-nil sampler wires the rig's internal
// subsystems — the TLS pager, the xcall rings — into the windowed
// series on the shared engine clock, so fault and drain samples land in
// the window of the request that caused them.
func buildLoadRigs(c loadCell, sm *series.Sampler, clk *series.Clock) (victim, antagonist load.Rig, err error) {
	switch c.app {
	case "tor":
		victim, err = load.NewTorRig(1, nil)
	case "tls":
		cfg := load.TLSRigConfig{}
		switch {
		case strings.HasPrefix(c.compose, "epc="):
			cfg.EPCRatio, err = strconv.ParseFloat(c.compose[len("epc="):], 64)
		case strings.HasPrefix(c.compose, "xcall="):
			var b int
			b, err = strconv.Atoi(c.compose[len("xcall="):])
			cfg.Xcall = &xcall.Config{Batch: b, SpinBudget: 64}
			if sm != nil {
				cfg.Xcall.Series = &xcall.SeriesConfig{Probe: sm, Clock: clk.Now}
			}
		case c.compose == "+epc":
			cfg.EPCRatio = 0.8
			cfg.Antagonist = true
		}
		if err != nil {
			return nil, nil, err
		}
		var tr *load.TLSRig
		tr, err = load.NewTLSRig(c.compose, cfg)
		if err == nil {
			if sm != nil {
				tr.SetSeries(sm, clk.Now)
			}
			victim = tr
			antagonist = tr.Antagonist()
		}
	case "sdn":
		victim, err = load.NewSDNRig()
	default:
		err = fmt.Errorf("eval: unknown load app %q", c.app)
	}
	if err != nil {
		return nil, nil, err
	}
	switch c.compose {
	case "+cpu":
		antagonist, err = load.NewCPUAntagonist(c.app)
	case "+cross":
		antagonist, err = load.NewCrossingAntagonist(c.app)
	}
	if err != nil {
		victim.Close()
		return nil, nil, err
	}
	return victim, antagonist, nil
}

// loadCalibrate serves the calibration prefix and returns the mean
// per-request service time plus the consumed tally.
func loadCalibrate(srv load.Server) (uint64, core.Tally, error) {
	var sum core.Tally
	for i := 0; i < loadSweepCalReqs; i++ {
		t, err := srv.Serve(i)
		if err != nil {
			return 0, sum, err
		}
		sum = sum.Add(t)
	}
	mean := sum.Cycles() / loadSweepCalReqs
	if mean < 1 {
		mean = 1
	}
	return mean, sum, nil
}

// loadSweepPoint measures one cell: build, calibrate, run, reduce. The
// n parameter is the victim request count (the grid uses loadSweepN;
// the trace golden pins a smaller point). With a series set attached,
// the cell samples arrivals/done/viol and queue gauges per window under
// its track prefix, and a shared Clock ties the rig internals' samples
// (pager faults, ring drains) to the engine's request timeline.
func loadSweepPoint(tr *obs.Trace, set *series.Set, c loadCell, n int) (LoadSweepPoint, error) {
	pt := LoadSweepPoint{App: c.app, Arrival: c.arrival, Rho: c.rho, Compose: c.compose, N: n}
	track := fmt.Sprintf("load-sweep/app=%s/arr=%s/rho=%.2f/compose=%s", c.app, c.arrival, c.rho, c.compose)
	sm := set.Sampler(track)
	clk := &series.Clock{}

	victim, antagonist, err := buildLoadRigs(c, sm, clk)
	if err != nil {
		return pt, err
	}
	defer victim.Close()
	if antagonist != nil {
		defer antagonist.Close()
	}

	meanSvc, cal, err := loadCalibrate(victim)
	if err != nil {
		return pt, err
	}
	pt.MeanSvc = meanSvc
	pt.Rate = c.rho * 1e6 / float64(meanSvc)
	pt.SLO = loadSweepSLOFactor * meanSvc

	spec := load.ArrivalSpec{Kind: load.Poisson, Rate: pt.Rate, N: n, Seed: loadSeed(track)}
	if c.arrival == "bursty" {
		spec.Kind = load.Bursty
		spec.Duty = 0.25
		spec.Period = 64 * meanSvc
		if spec.Period > load.MaxPeriod {
			spec.Period = load.MaxPeriod
		}
	}
	streams := []load.StreamConfig{{Name: c.app, Spec: spec, Srv: victim, SLO: pt.SLO}}

	if antagonist != nil {
		meanA, calA, err := loadCalibrate(antagonist)
		if err != nil {
			return pt, err
		}
		cal = cal.Add(calA)
		rateA := loadAntagonistUtil * 1e6 / float64(meanA)
		// Size the antagonist stream to cover the victim's arrival
		// horizon at its own rate, so the interference lasts the run.
		horizon := float64(n) * 1e6 / pt.Rate
		na := int(horizon * rateA / 1e6)
		if na < 1 {
			na = 1
		}
		if na > load.MaxRequests {
			na = load.MaxRequests
		}
		streams = append(streams, load.StreamConfig{
			Name: "antagonist",
			Spec: load.ArrivalSpec{Kind: load.Poisson, Rate: rateA, N: na, Seed: loadSeed(track + "/antagonist")},
			Srv:  antagonist,
		})
	}

	tr.RecordSpan(track, "load.calibrate", cal)
	res, err := load.RunSampled(tr, track, sm, clk, streams)
	if err != nil {
		return pt, err
	}
	v := res.Streams[0]
	pt.P50 = v.Hist.Quantile(0.50)
	pt.P99 = v.Hist.Quantile(0.99)
	pt.P999 = v.Hist.Quantile(0.999)
	pt.Max = v.Hist.Max()
	pt.Viol = v.Violations
	pt.Bucketed = v.Hist.Bucketed()
	if res.Makespan > 0 {
		pt.Util = float64(res.Service.Cycles()) / float64(res.Makespan)
	}

	// The calibration span plus the per-request spans account for every
	// cycle of the reported total, so trace attribution stays exact.
	tr.Total(track, "run.total", cal.Add(res.Service))
	if reg := tr.Registry(); reg != nil {
		reg.Add("load.sweep.requests", res.Combined.Count())
		reg.Add("load.sweep.violations", v.Violations)
	}
	return pt, nil
}

// RenderLoadSweep prints the sweep in its canonical order.
func RenderLoadSweep(w io.Writer, pts []LoadSweepPoint) {
	fmt.Fprintln(w, "Open-loop load sweep: latency percentiles in modeled cycles (wait + service)")
	fmt.Fprintf(w, "(rates calibrated to rho x mean service; SLO = %dx mean service; antagonists at %.0f%% utilization)\n",
		loadSweepSLOFactor, 100*loadAntagonistUtil)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tarrival\trho\tcompose\tn\treq/Mc\tsvc/req\tp50\tp99\tp999\tmax\tviol\tutil\tquant")
	for _, p := range pts {
		quant := "exact"
		if p.Bucketed {
			quant = "bucket"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%d\t%.2f\t%s\t%s\t%s\t%s\t%s\t%d\t%.2f\t%s\n",
			p.App, p.Arrival, p.Rho, p.Compose, p.N, p.Rate, fmtM(p.MeanSvc),
			fmtM(p.P50), fmtM(p.P99), fmtM(p.P999), fmtM(p.Max), p.Viol, p.Util, quant)
	}
	tw.Flush()
}
