package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/tlslite"
	"sgxnet/internal/topo"
	"sgxnet/internal/tor"
	"sgxnet/internal/xcall"
)

// Switchless-call ablation: the crossing-cost experiment behind the
// paper's per-packet overhead numbers. Every enclave boundary crossing
// costs ~10k cycles (Table 1's EENTER/EEXIT pricing), so a network
// application that crosses per packet pays that toll on its hot path.
// The xcall subsystem replaces synchronous crossings with bounded
// shared-memory rings (internal/xcall); this sweep measures how much
// of the crossing bill each application actually recovers, across ring
// batch targets and spin budgets, against the synchronous baseline —
// the ablation HotCalls and the switchless-call literature run on real
// hardware, reproduced here on the deterministic cost model.
//
// Three applications, one per adoption point:
//
//	tor    — onion relaying: cells enter via call ring, leave via
//	         OCall ring + batched data-plane shim (internal/tor)
//	tls    — record sealing/opening in an enclave-hosted codec
//	         (tlslite.RecordEngine)
//	quote  — the quoting enclave serving remote attestations
//	         (sdnctl.RunSGXSwitchlessQuotes)
//
// The metric is crossing cycles: SGX(U) instructions × the 10k-cycle
// SGX instruction price. Batch 1 shows there is no free lunch (every
// drain still pays an amortized crossing); batch ≥16 must recover ≥2×
// for all three applications — the acceptance bar the golden pins.

// xcallSweepGrid is the canonical sweep: for each application, one
// synchronous baseline plus switchless points over batch × spin.
var xcallSweepGrid = struct {
	apps    []string
	batches []int
	spins   []int
}{
	apps:    []string{"tor", "tls", "quote"},
	batches: []int{1, 4, 16, 64},
	spins:   []int{4, 64},
}

// Per-application workload sizes. Small enough to keep the 27-point
// sweep fast, large enough that ring steady state dominates warm-up.
const (
	xcallTorGets    = 12 // circuit round trips through 3 SGX ORs
	xcallTLSRecords = 48 // records sealed and opened (2 ops each)
	xcallQuoteASes  = 8  // AS controllers, one quote request each
)

// XcallSweepPoint is one (app, mode, batch, spin) cell.
type XcallSweepPoint struct {
	App   string
	Mode  string // "sync" or "switchless"
	Batch int    // 0 for sync
	Spin  int    // 0 for sync
	Ops   int    // application operations performed

	SGX         core.Tally  // enclave-side tally over the measured phase
	CrossCycles uint64      // SGX(U) × SGXInstructionCycles — the crossing bill
	Stats       xcall.Stats // ring counters (zero for sync)

	// Speedup is the synchronous baseline's CrossCycles over this
	// point's, per application (1.00 for the baseline itself).
	Speedup float64
}

// XcallSweep runs the full grid on the default pool.
func XcallSweep() ([]XcallSweepPoint, error) {
	return defaultRunner().XcallSweep()
}

// XcallSweep runs every grid point as an independent scenario on the
// pool. Each point builds its own network, platform, and meters, so
// the merged results are byte-identical at any worker count. Speedups
// are attached in a deterministic post-pass once every point's
// crossing bill is known.
func (r *Runner) XcallSweep() ([]XcallSweepPoint, error) {
	type cell struct {
		app string
		xc  *xcall.Config // nil = synchronous baseline
	}
	var cells []cell
	for _, app := range xcallSweepGrid.apps {
		cells = append(cells, cell{app: app})
		for _, b := range xcallSweepGrid.batches {
			for _, s := range xcallSweepGrid.spins {
				cells = append(cells, cell{app: app, xc: &xcall.Config{Batch: b, SpinBudget: s}})
			}
		}
	}
	pts, err := mapOrdered(r, len(cells), func(i int) (XcallSweepPoint, error) {
		c := cells[i]
		return xcallSweepPoint(r.trace, r.series, c.app, c.xc)
	})
	if err != nil {
		return nil, err
	}
	// Post-pass: each app's synchronous point is its grid prefix, so the
	// baseline is always available when its switchless points land.
	syncCycles := make(map[string]uint64)
	for _, p := range pts {
		if p.Mode == "sync" {
			syncCycles[p.App] = p.CrossCycles
		}
	}
	for i := range pts {
		if base := syncCycles[pts[i].App]; base > 0 && pts[i].CrossCycles > 0 {
			pts[i].Speedup = float64(base) / float64(pts[i].CrossCycles)
		}
	}
	return pts, nil
}

// meterClock is a late-bound virtual clock for rigs whose only time
// source is their meters: the ring is configured with Now before the
// engine exists, then the rig binds the engine's meter(s) once built.
// Unbound it reads zero; bound, it reads the summed accumulated cycles
// — a pure function of the rig's serial metered work, so ring samples
// stamped from it are deterministic.
type meterClock struct{ meters []*core.Meter }

func (mc *meterClock) bind(ms ...*core.Meter) { mc.meters = ms }

func (mc *meterClock) Now() uint64 {
	var c uint64
	for _, m := range mc.meters {
		c += m.Snapshot().Cycles()
	}
	return c
}

// xcallSweepPoint measures one cell on the named application rig. With
// a series set attached, switchless tor and tls cells sample their ring
// occupancy, drain batches, and park/wake counters per window on a
// meter-derived clock (the quote rig's engine is owned by the sdnctl
// deployment, which exposes no meter handle before the run — it stays
// unsampled).
func xcallSweepPoint(tr *obs.Trace, set *series.Set, app string, xc *xcall.Config) (XcallSweepPoint, error) {
	pt := XcallSweepPoint{App: app, Mode: "sync"}
	if xc != nil {
		pt.Mode = "switchless"
		pt.Batch = xc.Batch
		pt.Spin = xc.SpinBudget
	}
	track := fmt.Sprintf("xcall-sweep/app=%s/mode=%s", app, pt.Mode)
	if xc != nil {
		track += fmt.Sprintf("/batch=%d/spin=%d", pt.Batch, pt.Spin)
	}
	mc := &meterClock{}
	if sm := set.Sampler(track); sm != nil && xc != nil && app != "quote" {
		xc.Series = &xcall.SeriesConfig{Probe: sm, Clock: mc.Now}
	}

	var err error
	switch app {
	case "tor":
		err = xcallTorRig(tr, track, xc, mc, &pt)
	case "tls":
		err = xcallTLSRig(tr, track, xc, mc, &pt)
	case "quote":
		err = xcallQuoteRig(tr, track, xc, &pt)
	default:
		err = fmt.Errorf("eval: unknown xcall app %q", app)
	}
	if err != nil {
		return pt, err
	}
	pt.CrossCycles = pt.SGX.SGXU * core.SGXInstructionCycles

	tr.Total(track, "run.total", pt.SGX)
	if reg := tr.Registry(); reg != nil {
		reg.Add("xcall.sweep.calls", pt.Stats.Calls)
		reg.Add("xcall.sweep.drains", pt.Stats.Drains)
		reg.Add("xcall.sweep.fallbacks", pt.Stats.Fallbacks)
		reg.Add("xcall.sweep.parks", pt.Stats.Parks)
	}
	return pt, nil
}

// xcallTorRig relays gets through a 3-hop circuit of SGX ORs and
// tallies the relay-side crossings (steady-state relaying only: the
// circuit handshake and attestation stay synchronous by design and are
// excluded by a meter reset).
func xcallTorRig(tr *obs.Trace, track string, xc *xcall.Config, mc *meterClock, pt *XcallSweepPoint) error {
	tn, err := tor.Deploy(tor.NetworkConfig{
		Mode: tor.ModeSGXORs, Authorities: 1, Relays: 2, Exits: 1, Seed: 1, Xcall: xc,
	})
	if err != nil {
		return err
	}
	c, err := tn.NewClient("client", 11)
	if err != nil {
		return err
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		return err
	}
	path, err := c.PickPath(consensus, 3)
	if err != nil {
		return err
	}
	circ, err := c.BuildCircuit(path)
	if err != nil {
		return err
	}
	defer circ.Close()
	meters := make([]*core.Meter, 0, len(tn.ORs))
	for _, o := range tn.ORs {
		o.Enclave().Meter().Reset()
		meters = append(meters, o.Enclave().Meter())
	}
	mc.bind(meters...)
	sp := tr.Begin(track, "xcall.relay", meters...)
	for i := 0; i < xcallTorGets; i++ {
		resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte(fmt.Sprintf("req-%d", i)))
		if err != nil {
			return err
		}
		if string(resp) != fmt.Sprintf("content:req-%d", i) {
			return fmt.Errorf("eval: tor rig get %d: %q", i, resp)
		}
	}
	if err := tn.FlushXcall(); err != nil {
		return err
	}
	sp.End()
	pt.Ops = xcallTorGets
	for _, m := range meters {
		pt.SGX = pt.SGX.Add(m.Snapshot())
	}
	pt.Stats = tn.XcallStats()
	return nil
}

// xcallTLSRig seals and opens records through an enclave-hosted codec.
func xcallTLSRig(tr *obs.Trace, track string, xc *xcall.Config, mc *meterClock, pt *XcallSweepPoint) error {
	plat, err := core.NewPlatform("xcall-tls", core.PlatformConfig{Seed: []byte(track)})
	if err != nil {
		return err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return err
	}
	var keys tlslite.Keys
	for i := range keys.EncC2S {
		keys.EncC2S[i] = byte(i)
		keys.EncS2C[i] = byte(i + 16)
	}
	for i := range keys.MacC2S {
		keys.MacC2S[i] = byte(i + 32)
		keys.MacS2C[i] = byte(i + 64)
	}
	eng, err := tlslite.NewRecordEngine(plat, signer, keys, xc)
	if err != nil {
		return err
	}
	eng.Meter().Reset()
	mc.bind(eng.Meter())
	sp := tr.Begin(track, "xcall.records", eng.Meter())
	for seq := uint64(0); seq < xcallTLSRecords; seq++ {
		rec, err := eng.Seal(tlslite.ClientToServer, seq, []byte("application data"))
		if err != nil {
			return err
		}
		if _, err := eng.Open(tlslite.ClientToServer, seq, rec); err != nil {
			return err
		}
	}
	if err := eng.Flush(); err != nil {
		return err
	}
	sp.End()
	pt.Ops = 2 * xcallTLSRecords
	pt.SGX = eng.Meter().Snapshot()
	pt.Stats = eng.XcallStats()
	return nil
}

// xcallQuoteRig serves one quote per AS controller through the SDN
// deployment's controller-host quoting enclave.
func xcallQuoteRig(tr *obs.Trace, track string, xc *xcall.Config, pt *XcallSweepPoint) error {
	tp, err := topo.Random(topo.Config{N: xcallQuoteASes, Seed: 42, PrefJitter: true})
	if err != nil {
		return err
	}
	var rep *sdnctl.RunReport
	if xc == nil {
		rep, err = sdnctl.RunSGX(tp)
	} else {
		rep, err = sdnctl.RunSGXSwitchlessQuotes(tp, *xc)
	}
	if err != nil {
		return err
	}
	pt.Ops = rep.Attestations
	pt.SGX = rep.QuoteServing
	pt.Stats = rep.QuoteXcall
	// The deployment rig owns its meters; record the serving tally as a
	// span after the fact so the track still carries the phase.
	tr.RecordSpan(track, "xcall.serve", pt.SGX)
	return nil
}

// RenderXcallSweep prints the sweep in its canonical order.
func RenderXcallSweep(w io.Writer, pts []XcallSweepPoint) {
	fmt.Fprintln(w, "Switchless-call ablation: crossing cycles vs synchronous EENTER/EEXIT")
	fmt.Fprintf(w, "(tor: %d circuit gets; tls: %d records sealed+opened; quote: %d attestations)\n",
		xcallTorGets, xcallTLSRecords, xcallQuoteASes)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tmode\tbatch\tspin\tops\tsgx\tcross-cycles\tring-calls\tdrains\tfallbacks\tspeedup")
	for _, p := range pts {
		batch, spin := "-", "-"
		if p.Mode == "switchless" {
			batch, spin = fmt.Sprint(p.Batch), fmt.Sprint(p.Spin)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%s\t%d\t%d\t%d\t%.2f×\n",
			p.App, p.Mode, batch, spin, p.Ops,
			p.SGX.SGXU, fmtM(p.CrossCycles),
			p.Stats.Calls, p.Stats.Drains, p.Stats.Fallbacks, p.Speedup)
	}
	tw.Flush()
}
