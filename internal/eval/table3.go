package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/obs"
	"sgxnet/internal/topo"
	"sgxnet/internal/tor"

	"sgxnet/internal/sdnctl"
)

// Table 3: number of remote attestations required by each design. The
// paper gives formulas ("number of AS controllers", …); this experiment
// runs each design at a small scale and counts actual attestations,
// confirming the formulas hold in the implementation.

// Table3Row is one design's attestation count.
type Table3Row struct {
	Design   string
	Formula  string
	Scale    int // the formula's variable at this run
	Measured int
}

// Table3 runs each design and counts attestations.
func Table3() ([]Table3Row, error) {
	return Table3Traced(nil)
}

// Table3Traced is Table3 with the SDN run on track "table3/sdn", the
// authority's exit re-scan on "table3/tor-authority", and middlebox
// provisioning on "table3/middlebox".
func Table3Traced(tr *obs.Trace) ([]Table3Row, error) {
	var rows []Table3Row

	// Inter-domain routing: one attestation per AS controller.
	tp, err := topo.Random(topo.Config{N: 6, Seed: 42, PrefJitter: true})
	if err != nil {
		return nil, err
	}
	rep, err := sdnctl.RunSGXTraced(tp, tr, "table3/sdn")
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Design:   "Inter-domain routing",
		Formula:  "number of AS controllers",
		Scale:    6,
		Measured: rep.Attestations,
	})

	// Tor authority: one attestation per reachable exit node (admission
	// scan of the incremental SGX-OR deployment; we count a single
	// authority's attestations of exits only).
	tn, err := tor.Deploy(tor.NetworkConfig{Mode: tor.ModeSGXORs, Authorities: 3, Relays: 2, Exits: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	exits := 0
	for _, o := range tn.ORs {
		if o.Exit {
			exits++
		}
	}
	// The admission scan attests all ORs; the paper's row is about the
	// authority's ongoing verification of reachable exits, so re-scan
	// just the exits.
	auth := tn.Auths[0]
	auth.SetTrace(tr, "table3/tor-authority")
	before := auth.Attestations
	for _, o := range tn.ORs {
		if o.Exit {
			if err := auth.AdmitByAttestation(o.Descriptor()); err != nil {
				return nil, err
			}
		}
	}
	rows = append(rows, Table3Row{
		Design:   "Tor network (Authority)",
		Formula:  "number of reachable exit nodes",
		Scale:    exits,
		Measured: auth.Attestations - before,
	})

	// Tor client: one attestation per authority when fetching consensus.
	client, err := tn.NewClient("t3-client", 1)
	if err != nil {
		return nil, err
	}
	if _, err := tn.Discover(client); err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Design:   "Tor network (Client)",
		Formula:  "number of authority nodes",
		Scale:    len(tn.Auths),
		Measured: client.Attestations,
	})

	// Middlebox: one attestation per in-path middlebox (counted by the
	// middlebox tests as well; here by formula with scale 2).
	mbAttests, err := middleboxAttestations(tr, "table3/middlebox", 2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Design:   "TLS-aware middlebox",
		Formula:  "number of in-path middleboxes",
		Scale:    2,
		Measured: mbAttests,
	})
	return rows, nil
}

// RenderTable3 prints the table.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: number of remote attestations for each design")
	tw := newTab(w)
	fmt.Fprintln(tw, "type\tformula (paper)\tscale\tmeasured")
	for _, r := range rows {
		ok := "✓"
		if r.Measured != r.Scale {
			ok = fmt.Sprintf("✗ (want %d)", r.Scale)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d %s\n", r.Design, r.Formula, r.Scale, r.Measured, ok)
	}
	tw.Flush()
}
