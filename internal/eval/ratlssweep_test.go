package eval

import (
	"testing"
)

// TestRATLSSweepShape checks the claim the sweep exists to demonstrate:
// every cell pays exactly one cold verification per distinct peer and
// admits everything else warm, the SGX gate adds its crossings on top,
// and at 10^6 clients the warm per-connection cost is under 5% of the
// cold cost — the amortization acceptance bar.
func TestRATLSSweepShape(t *testing.T) {
	pts, err := RATLSSweep()
	if err != nil {
		t.Fatal(err)
	}
	want := len(ratlsSweepGrid.modes) * len(ratlsSweepGrid.shards) * len(ratlsSweepGrid.clients)
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	coldPerConn := map[string]uint64{}
	for _, p := range pts {
		if p.Cold != ratlsSweepPeers {
			t.Errorf("%s shards=%d clients=%d: %d cold verifications, want %d",
				p.Mode, p.Shards, p.Clients, p.Cold, ratlsSweepPeers)
		}
		if p.Warm != uint64(p.Clients-ratlsSweepPeers) {
			t.Errorf("%s shards=%d clients=%d: %d warm admissions, want %d",
				p.Mode, p.Shards, p.Clients, p.Warm, p.Clients-ratlsSweepPeers)
		}
		if p.HitRate <= 0 || p.HitRate >= 1 {
			t.Errorf("%s shards=%d clients=%d: hit rate %v out of range", p.Mode, p.Shards, p.Clients, p.HitRate)
		}
		if p.WarmPerConn >= p.ColdPerConn {
			t.Errorf("%s shards=%d clients=%d: warm/conn %d not cheaper than cold/conn %d",
				p.Mode, p.Shards, p.Clients, p.WarmPerConn, p.ColdPerConn)
		}
		if p.Clients == 1_000_000 && p.WarmOverCold > 0.05 {
			t.Errorf("%s shards=%d: warm/cold ratio %.4f breaches the 5%% bar at 10^6 clients",
				p.Mode, p.Shards, p.WarmOverCold)
		}
		coldPerConn[p.Mode] = p.ColdPerConn
	}
	if coldPerConn["sgx"] <= coldPerConn["native"] {
		t.Errorf("sgx cold/conn %d does not exceed native %d — the gate's crossings vanished",
			coldPerConn["sgx"], coldPerConn["native"])
	}
}

// TestRATLSSweepDeterministic checks the determinism contract: serial
// runs repeat exactly and an oversubscribed-parallel run matches, warm
// phase concurrency notwithstanding.
func TestRATLSSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times; slow under -short")
	}
	a, err := NewRunner(1).RATLSSweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(1).RATLSSweep()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRunner(8).RATLSSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d diverged between serial runs:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Errorf("point %d diverged at -workers 8:\n%+v\n%+v", i, a[i], c[i])
		}
	}
}
