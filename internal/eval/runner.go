package eval

import (
	"runtime"
	"sync"

	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

// The parallel evaluation engine. The full sgxnet-tables sweep is
// embarrassingly parallel — every Figure 3 point, every native-vs-SGX
// pair within a point, every ablation, and every fault-sweep intensity
// builds its own netsim.Network with its own hosts, meters, and RNG
// state — but the seed harness ran them strictly serially. A Runner
// fans independent scenario runs out across a bounded worker pool and
// merges results back in input order, so the rendered transcripts and
// meter tallies are byte-for-byte identical at any worker count: the
// golden files gate on it, and TestParallelSerialEquivalence enforces
// it under -race.
//
// Determinism argument: each scenario is a pure function of its inputs
// (topology seed, scenario config) — scenario code shares no package
// state (see DESIGN.md §"Concurrency & determinism"), costs are charged
// as fixed instruction counts rather than measured wall clock, and the
// DH parameter cache changes which prime is reused but never what is
// charged. Fan-out therefore changes only wall-clock interleaving;
// the in-order merge makes the output independent of completion order.

// Runner is a bounded worker pool for independent scenario runs.
type Runner struct {
	workers int
	sem     chan struct{}
	trace   *obs.Trace
	series  *series.Set
}

// NewRunner builds a pool with the given parallelism; workers <= 0
// means GOMAXPROCS. Workers == 1 degrades to strictly serial execution
// (the reference the equivalence tests compare against).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's parallelism bound.
func (r *Runner) Workers() int { return r.workers }

// SetTrace attaches a trace: scenario runs record their phases as spans
// on per-scenario tracks. Concurrent legs always use distinct tracks and
// the exporter orders events by (track, seq), so the trace — like the
// rendered tables — is byte-identical at any worker count. Call before
// the first scenario; a nil trace (the default) keeps every span
// recorder on its no-op path.
func (r *Runner) SetTrace(tr *obs.Trace) { r.trace = tr }

// Trace returns the attached trace, or nil.
func (r *Runner) Trace() *obs.Trace { return r.trace }

// SetSeries attaches a windowed time-series set: instrumented sweeps
// (load, EPC, xcall, scale) sample per-window counters and gauges on
// their virtual clocks into per-sweep-cell tracks. Window reduction is
// order-invariant (counters sum, gauges keep the latest-timestamped
// sample) and concurrent cells always use distinct track prefixes, so
// the exported series — like the tables and the trace — are
// byte-identical at any worker count. Nil (the default) keeps every
// sampler on its no-op path.
func (r *Runner) SetSeries(s *series.Set) { r.series = s }

// Series returns the attached series set, or nil.
func (r *Runner) Series() *series.Set { return r.series }

// defaultRunner is the pool used by the package-level convenience
// wrappers (Figure3, Table4, …): full parallelism, which by the
// determinism argument above is always safe.
func defaultRunner() *Runner { return NewRunner(0) }

// mapOrdered runs fn(0..n-1) on the runner and returns the results in
// input order. The first error wins (by index, not by completion time,
// so the reported error is deterministic too); remaining slots are
// still awaited so no goroutine outlives the call.
func mapOrdered[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	if r == nil || r.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	// Caller-runs policy: a task only spawns when a pool slot is free;
	// otherwise the calling goroutine executes it inline. Scenarios nest
	// (Figure 3 → Table4At → native/SGX pair) on the same pool, and a
	// blocking acquire could leave every slot held by a parent waiting
	// to spawn a child. Caller-runs keeps the caller always making
	// progress, so saturation degrades to serial instead of deadlock.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case r.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-r.sem }()
				out[i], errs[i] = fn(i)
			}(i)
		default:
			out[i], errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// pair runs two independent scenario legs concurrently (when the pool
// allows) and returns both — the native-vs-SGX shape inside one
// Figure 3 point.
func pair[A, B any](r *Runner, fa func() (A, error), fb func() (B, error)) (A, B, error) {
	var a A
	var b B
	if r == nil || r.workers <= 1 {
		a, err := fa()
		if err != nil {
			return a, b, err
		}
		b, err := fb()
		return a, b, err
	}
	var errA, errB error
	select {
	case r.sem <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { <-r.sem }()
			b, errB = fb()
		}()
		a, errA = fa()
		<-done
	default: // pool saturated: caller-runs, serially
		a, errA = fa()
		if errA == nil {
			b, errB = fb()
		}
	}
	if errA != nil {
		return a, b, errA
	}
	return a, b, errB
}

// Section is one independently computable unit of the sgxnet-tables
// transcript: it runs its experiment and renders into a private buffer
// the engine later concatenates in declaration order.
type Section func() ([]byte, error)

// RenderAll computes every section on the runner (each section also
// parallelizes internally through the same pool) and returns their
// outputs in input order.
func (r *Runner) RenderAll(sections []Section) ([][]byte, error) {
	return mapOrdered(r, len(sections), func(i int) ([]byte, error) {
		return sections[i]()
	})
}
