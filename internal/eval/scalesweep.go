package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/eval/scale"
	"sgxnet/internal/netsim/des"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

// Discrete-event scale sweep: the goroutine-per-host rigs top out at a
// few dozen hosts because every host is a real goroutine with channels
// and real synchronization; Figure 3's question — how does the
// in-enclave overhead behave as the topology grows? — wants thousands.
// Each cell here replays the same cost model through the des kernel's
// lightweight state machines instead: 4096-AS controllers and
// 3000-relay, million-flow Tor networks simulate in seconds, and every
// cell is byte-deterministic at any worker count because a cell is one
// single-threaded kernel run.
//
// Wall-clock throughput (events/sec) deliberately does not appear in
// the rendered table — it would break the goldens; BenchmarkScaleSweep
// reports it into BENCH_results.json instead.

// scaleSweepSpecs is the canonical grid: the scaled Figure 3 AS axis
// (the smallest cell carries a peering ring so the gossip stage is
// exercised and golden-pinned) and the Tor relay axis with 10^5–10^6
// flow schedules reusing the load generator's arrival processes.
func scaleSweepSpecs() []string {
	return []string{
		"sdn:ases=64,updates=4,rate=100,seed=42,edges=0-1|1-2|2-3|3-4|4-5|5-6|6-7|0-7",
		"sdn:ases=256,updates=4,rate=100,seed=42",
		"sdn:ases=1024,updates=4,rate=100,seed=42",
		"sdn:ases=4096,updates=4,rate=100,seed=42",
		"tor:relays=100,flows=100000,hops=3,rate=4000,seed=7,arrival=poisson",
		"tor:relays=1000,flows=100000,hops=3,rate=4000,seed=7,arrival=bursty",
		"tor:relays=3000,flows=1000000,hops=3,rate=4000,seed=7,arrival=poisson",
	}
}

// ScaleSweepPoint is one cell's reduction.
type ScaleSweepPoint struct {
	Spec     string
	Ops      int
	Events   uint64
	PeakLive int
	Makespan uint64 // virtual cycles

	PerOpNative uint64 // modeled cycles per op, native build
	PerOpSGX    uint64 // modeled cycles per op, SGX build
	Overhead    float64
	MeanLat     uint64 // mean op completion latency, virtual cycles
}

// ScaleSweep runs the full grid on the default pool.
func ScaleSweep() ([]ScaleSweepPoint, error) {
	return defaultRunner().ScaleSweep()
}

// ScaleSweep runs every grid cell as an independent scenario on the
// pool. A cell is one single-threaded kernel run, so the merged table
// is byte-identical at any worker count.
func (r *Runner) ScaleSweep() ([]ScaleSweepPoint, error) {
	specs := scaleSweepSpecs()
	return mapOrdered(r, len(specs), func(i int) (ScaleSweepPoint, error) {
		return scaleSweepPoint(r.trace, r.series, specs[i])
	})
}

// scaleSweepPoint simulates one cell and records its tallies: one span
// per build on the cell's track, with the run total their exact sum,
// plus sweep-wide event/op counters in the registry. With a series set
// attached, the kernel samples events/backlog per window and the SDN
// machine samples the serialized controller's queueing delay, all on
// the cell's own virtual clock under the cell's track prefix.
func scaleSweepPoint(tr *obs.Trace, set *series.Set, spec string) (ScaleSweepPoint, error) {
	s, err := scale.ParseSpec(spec)
	if err != nil {
		return ScaleSweepPoint{}, err
	}
	track := "scale-sweep/" + spec
	// Assign through the concrete type so a nil set yields a nil
	// interface (not a typed-nil des.Sampler that defeats the kernel's
	// sampling-off fast path).
	var sm des.Sampler
	if sp := set.Sampler(track); sp != nil {
		sm = sp
	}
	res, err := scale.RunSampled(s, sm)
	if err != nil {
		return ScaleSweepPoint{}, err
	}
	pt := ScaleSweepPoint{
		Spec:        spec,
		Ops:         res.Ops,
		Events:      res.Events,
		PeakLive:    res.PeakLive,
		Makespan:    res.Makespan,
		PerOpNative: res.PerOpNativeCycles(),
		PerOpSGX:    res.PerOpSGXCycles(),
		Overhead:    res.Overhead(),
		MeanLat:     res.MeanLatency(),
	}
	tr.RecordSpan(track, "scale.native", res.Native)
	tr.RecordSpan(track, "scale.sgx", res.SGX)
	tr.Total(track, "run.total", res.Native.Add(res.SGX))
	if reg := tr.Registry(); reg != nil {
		reg.Add("scale.sweep.events", res.Events)
		reg.Add("scale.sweep.ops", uint64(res.Ops))
	}
	return pt, nil
}

// RenderScaleSweep prints the sweep in its canonical order.
func RenderScaleSweep(w io.Writer, pts []ScaleSweepPoint) {
	fmt.Fprintln(w, "Discrete-event scale sweep: thousands of hosts, event-driven (no goroutine-per-host)")
	fmt.Fprintln(w, "(per-op modeled cycles from the shared cost model; events/peak/makespan from the kernel;")
	fmt.Fprintln(w, " wall-clock events/sec reported by BenchmarkScaleSweep, not here — it is not deterministic)")
	tw := newTab(w)
	fmt.Fprintln(tw, "spec\tops\tevents\tpeak\tmakespan\top/native\top/sgx\toverhead\tmean-lat")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%s\t%.2fx\t%s\n",
			p.Spec, p.Ops, p.Events, p.PeakLive, fmtM(p.Makespan),
			fmtM(p.PerOpNative), fmtM(p.PerOpSGX), p.Overhead, fmtM(p.MeanLat))
	}
	tw.Flush()
}
