// Package eval regenerates every table and figure of the paper's
// evaluation (§5) from live runs of the reproduced system, plus the
// ablation experiments called out in DESIGN.md. Each experiment returns
// structured results (for tests and benchmarks) and renders a text table
// that mirrors the paper's layout, with the paper's published values
// alongside the measured ones.
package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Paper-published values, for side-by-side rendering.
var paper = struct {
	table1 map[string][2]uint64 // role+dh → {SGX(U), normal}
	table2 map[string][2]uint64 // config → {SGX(U), normal}
	table4 map[string]uint64    // cell → normal (or SGX(U))
}{
	table1: map[string][2]uint64{
		"target/noDH":     {20, 154_000_000},
		"target/DH":       {20, 4_338_000_000},
		"quoting/noDH":    {17, 125_000_000},
		"quoting/DH":      {17, 125_000_000},
		"challenger/noDH": {8, 124_000_000},
		"challenger/DH":   {8, 348_000_000},
	},
	table2: map[string][2]uint64{
		"1/plain":    {6, 13_000},
		"1/crypto":   {6, 97_000},
		"100/plain":  {204, 136_000},
		"100/crypto": {204, 972_000},
	},
	table4: map[string]uint64{
		"inter/native":     74_000_000,
		"inter/sgx":        135_000_000,
		"inter/sgx/sgxu":   1448,
		"aslocal/native":   13_000_000,
		"aslocal/sgx":      24_000_000,
		"aslocal/sgx/sgxu": 42,
	},
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtM(v uint64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.0fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.0fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
