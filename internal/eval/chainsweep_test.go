package eval

import "testing"

// TestChainSweepShape checks the two claims the sweep exists to pin:
// batching amortizes the per-hop crossing bill below the synchronous
// cost at every (depth, rules) cell, and at depth 8 the rule table —
// not the crossings — dominates the per-packet cost.
func TestChainSweepShape(t *testing.T) {
	pts, err := ChainSweep()
	if err != nil {
		t.Fatal(err)
	}
	want := len(chainSweepGrid.depths) * len(chainSweepGrid.rules) * (1 + len(chainSweepGrid.batches))
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}

	type key struct {
		depth, rules, batch int
	}
	sgx := map[key]ChainSweepPoint{}
	native := map[key]ChainSweepPoint{}
	for _, p := range pts {
		if p.Packets != chainSweepPackets || p.Hops == 0 || p.Delivered == 0 {
			t.Errorf("%s depth=%d batch=%d rules=%d: degenerate cell %+v", p.Mode, p.Depth, p.Batch, p.Rules, p)
		}
		switch p.Mode {
		case "native":
			if p.CrossPerHop != 0 {
				t.Errorf("native depth=%d rules=%d: nonzero crossing cost %d", p.Depth, p.Rules, p.CrossPerHop)
			}
			native[key{p.Depth, p.Rules, 0}] = p
		case "sgx":
			if p.AdmitCold != 1 || p.AdmitWarm != uint64(p.Depth-1) {
				t.Errorf("sgx depth=%d batch=%d rules=%d: admission cold=%d warm=%d, want 1/%d",
					p.Depth, p.Batch, p.Rules, p.AdmitCold, p.AdmitWarm, p.Depth-1)
			}
			if p.CrossPerHop == 0 {
				t.Errorf("sgx depth=%d batch=%d rules=%d: crossing cost vanished", p.Depth, p.Batch, p.Rules)
			}
			sgx[key{p.Depth, p.Rules, p.Batch}] = p
		default:
			t.Fatalf("unknown mode %q", p.Mode)
		}
	}

	for _, d := range chainSweepGrid.depths {
		for _, ru := range chainSweepGrid.rules {
			sync := sgx[key{d, ru, 1}]
			for _, b := range []int{16, 64} {
				batched := sgx[key{d, ru, b}]
				if batched.CrossPerHop >= sync.CrossPerHop {
					t.Errorf("depth=%d rules=%d: batch=%d cross/hop %d not below sync %d",
						d, ru, b, batched.CrossPerHop, sync.CrossPerHop)
				}
			}
			// Identical stages and rules → identical routing outcomes.
			nat := native[key{d, ru, 0}]
			for _, b := range chainSweepGrid.batches {
				s := sgx[key{d, ru, b}]
				if s.Hops != nat.Hops || s.Delivered != nat.Delivered || s.Dropped != nat.Dropped || s.Alerts != nat.Alerts {
					t.Errorf("depth=%d rules=%d batch=%d: sgx routing (hops=%d deliv=%d drop=%d alerts=%d) diverges from native (%d/%d/%d/%d)",
						d, ru, b, s.Hops, s.Delivered, s.Dropped, s.Alerts,
						nat.Hops, nat.Delivered, nat.Dropped, nat.Alerts)
				}
			}
		}
	}

	// Depth 8: the 4096-entry table dominates every mode and dwarfs the
	// 16-entry per-packet cost.
	for _, p := range pts {
		if p.Depth != 8 || p.Rules != 4096 {
			continue
		}
		if p.RuleShare <= 0.5 {
			t.Errorf("%s depth=8 batch=%d rules=4096: rule share %.3f not dominant (>0.5)",
				p.Mode, p.Batch, p.RuleShare)
		}
	}
	if small, big := sgx[key{8, 16, 64}], sgx[key{8, 4096, 64}]; big.PerPacket <= 2*small.PerPacket {
		t.Errorf("depth=8 batch=64: rules=4096 per-packet %d not >2x rules=16 per-packet %d",
			big.PerPacket, small.PerPacket)
	}
}

// TestChainSweepDeterministic checks the workers-equivalence contract
// that the CLI golden relies on.
func TestChainSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice; slow under -short")
	}
	a, err := NewRunner(1).ChainSweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(8).ChainSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d diverged at -workers 8:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
