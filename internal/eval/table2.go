package eval

import (
	"encoding/binary"
	"fmt"
	"io"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/sgxcrypto"
)

// Table 2: instructions of packet transmission from inside an enclave,
// single vs batched, with and without symmetric crypto — the experiment
// behind the paper's "the cost can be amortized with batched I/O".

// Table2Row is one Table 2 cell pair.
type Table2Row struct {
	Packets int
	Crypto  bool
	Tally   core.Tally
}

// senderProgram is the paper's "simple server program which sends an MTU
// sized packet inside an enclave".
func senderProgram() *core.Program {
	return &core.Program{
		Name:    "packet-sender",
		Version: "1",
		Handlers: map[string]core.Handler{
			// send: count(4) ‖ crypto(1) ‖ connID(4)
			"send": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 9 {
					return nil, fmt.Errorf("eval: short send arg")
				}
				count := int(binary.LittleEndian.Uint32(arg[:4]))
				withCrypto := arg[4] == 1
				connID := binary.LittleEndian.Uint32(arg[5:9])
				var c *sgxcrypto.Cipher
				if withCrypto {
					key, err := env.GetKey(core.KeySealEnclave)
					if err != nil {
						return nil, err
					}
					cc, err := sgxcrypto.NewAES(env.Meter(), key[:16])
					if err != nil {
						return nil, err
					}
					c = cc
				}
				pkt := make([]byte, core.MTUBytes)
				mk := func() []byte {
					if c != nil {
						return c.SealECB(env.Meter(), pkt)
					}
					return pkt
				}
				if count == 1 {
					_, err := env.OCall("net.send", netsim.EncodeSend(connID, mk()))
					return nil, err
				}
				packets := make([][]byte, count)
				for i := range packets {
					packets[i] = mk()
				}
				_, err := env.OCall("net.batch", netsim.EncodeBatch(connID, packets))
				return nil, err
			},
		},
	}
}

// MeasureSend runs one transmission and returns its tally (the EGETKEY
// used for session-key derivation in the crypto path is excluded, as the
// table isolates the transmission itself).
func MeasureSend(count int, withCrypto bool) (core.Tally, error) {
	return MeasureSendTraced(nil, "", count, withCrypto)
}

// MeasureSendTraced is MeasureSend with the measured enclave call
// recorded as a "send" span on the given track. The track's run total is
// the raw meter tally of the call — the table's −1 SGX(U) crypto
// adjustment is a rendering convention, not a cost the enclave avoided.
func MeasureSendTraced(tr *obs.Trace, track string, count int, withCrypto bool) (core.Tally, error) {
	n := netsim.New()
	src, err := n.AddHost("src", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		return core.Tally{}, err
	}
	dst, err := n.AddHost("dst", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		return core.Tally{}, err
	}
	l, err := dst.Listen("sink")
	if err != nil {
		return core.Tally{}, err
	}
	received := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			received <- 0
			return
		}
		got := 0
		for got < count {
			if _, err := c.Recv(); err != nil {
				break
			}
			got++
		}
		received <- got
	}()
	signer, err := core.NewSigner()
	if err != nil {
		return core.Tally{}, err
	}
	enc, err := src.Platform().Launch(senderProgram(), signer)
	if err != nil {
		return core.Tally{}, err
	}
	shim := netsim.NewIOShim(src, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("net.", shim)
	enc.BindHost(&mh)
	conn, err := src.Dial("dst", "sink")
	if err != nil {
		return core.Tally{}, err
	}
	id := shim.Adopt(conn)

	enc.Meter().Reset()
	arg := make([]byte, 9)
	binary.LittleEndian.PutUint32(arg[:4], uint32(count))
	if withCrypto {
		arg[4] = 1
	}
	binary.LittleEndian.PutUint32(arg[5:9], id)
	sp := tr.Begin(track, "send", enc.Meter())
	_, err = enc.Call("send", arg)
	sp.End()
	if err != nil {
		return core.Tally{}, err
	}
	tally := enc.Meter().Snapshot()
	tr.Total(track, "run.total", tally)
	if withCrypto {
		tally.SGXU--
	}
	if got := <-received; got != count {
		return tally, fmt.Errorf("eval: sink received %d/%d packets", got, count)
	}
	return tally, nil
}

// Table2 measures all four configurations.
func Table2() ([]Table2Row, error) {
	return Table2Traced(nil)
}

// Table2Traced is Table2 with each configuration recorded on a
// "table2/n=<packets>/crypto=<v>" track.
func Table2Traced(tr *obs.Trace) ([]Table2Row, error) {
	var rows []Table2Row
	for _, cfg := range []struct {
		n      int
		crypto bool
	}{{1, false}, {1, true}, {100, false}, {100, true}} {
		track := fmt.Sprintf("table2/n=%d/crypto=%v", cfg.n, cfg.crypto)
		t, err := MeasureSendTraced(tr, track, cfg.n, cfg.crypto)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Packets: cfg.n, Crypto: cfg.crypto, Tally: t})
	}
	return rows, nil
}

// RenderTable2 prints the table with reference values.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: instructions of packet transmission (measured vs paper)")
	tw := newTab(w)
	fmt.Fprintln(tw, "packets\tcrypto\tSGX(U)\tpaper\tnormal\tpaper")
	for _, r := range rows {
		key := fmt.Sprintf("%d/plain", r.Packets)
		cs := "w/o"
		if r.Crypto {
			key, cs = fmt.Sprintf("%d/crypto", r.Packets), "w/"
		}
		ref := paper.table2[key]
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%s\n",
			r.Packets, cs, r.Tally.SGXU, ref[0], fmtM(r.Tally.Normal), fmtM(ref[1]))
	}
	tw.Flush()
}
