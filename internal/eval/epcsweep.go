package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

// EPC oversubscription sweep: the experiment the paper's central
// resource constraint implies but never runs. N tenant enclaves share
// one platform whose EPC is deliberately small; each tenant cyclically
// scans a private working set sized relative to its fair share of the
// pageable EPC. Below ratio 1.0 the working sets fit and paging is a
// one-time warm-up; above it every tenant's scan forces encrypted
// EWB/ELDU traffic that the pager charges on the faulting tenant's
// meter. The sweep reports per-op overhead versus a native (no-SGX,
// no-paging) baseline for each (tenants, ratio, policy) point — the
// overhead *shape* under memory pressure, which Stress-SGX and the SGX
// benchmark-suite papers show dominates enclave performance at scale.

// epcSweepOpCompute is the modelled per-op computation (normal
// instructions): enough that the fixed enclave-crossing cost does not
// drown the paging signal, small enough that paging dominates past
// ratio 1.0.
const epcSweepOpCompute = 50_000

// epcSweepFrames is each point's total EPC size. Launching a tenant
// consumes 7 frames of enclave infrastructure (SECS, TCS, one code
// page, four heap pages); the remainder is the pageable budget the
// tenants' working sets compete for.
const epcSweepFrames = 64

// epcSweepPasses is how many times each tenant scans its working set.
// Pass one is the demand-zero warm-up; later passes isolate
// steady-state reload traffic.
const epcSweepPasses = 3

// EPCSweepPoint is one (tenants, working-set ratio, policy) cell.
type EPCSweepPoint struct {
	Tenants    int
	Ratio      float64 // working set / fair share of pageable EPC
	Policy     string
	WorkingSet int // pages per tenant
	Budget     int // pageable frames (after enclave infrastructure)
	Ops        int // touches per tenant (passes × working set)

	Native core.Tally // all tenants' native legs summed
	SGX    core.Tally // all tenants' enclave legs summed
	Stats  core.PagerStats

	PerOpNativeCycles uint64
	PerOpSGXCycles    uint64
	Overhead          float64 // PerOpSGX / PerOpNative
}

// epcSweepGrid is the canonical sweep: tenant counts × working-set
// ratios × the three replacement policies.
var epcSweepGrid = struct {
	tenants  []int
	ratios   []float64
	policies []string
}{
	tenants:  []int{1, 2, 4},
	ratios:   []float64{0.5, 1.0, 1.5, 2.0},
	policies: []string{"clock", "lru", "random"},
}

// epcSweepPolicy instantiates a fresh policy by name. The random
// policy's seed is fixed: the sweep is a deterministic experiment.
func epcSweepPolicy(name string) (core.VictimPolicy, error) {
	switch name {
	case "clock":
		return core.NewClockPolicy(), nil
	case "lru":
		return core.NewLRUPolicy(), nil
	case "random":
		return core.NewRandomPolicy(0x5eed), nil
	default:
		return nil, fmt.Errorf("eval: unknown eviction policy %q", name)
	}
}

// tenantProgram is one tenant's enclave: a single "op" entry point
// performing the modelled unit of work.
func tenantProgram(i int) *core.Program {
	return &core.Program{
		Name:    fmt.Sprintf("epc-tenant-%d", i),
		Version: "1",
		Handlers: map[string]core.Handler{
			"op": func(env *core.Env, arg []byte) ([]byte, error) {
				env.ChargeNormal(epcSweepOpCompute)
				return nil, nil
			},
		},
	}
}

// EPCSweep runs the full grid on the default pool.
func EPCSweep() ([]EPCSweepPoint, error) {
	return defaultRunner().EPCSweep()
}

// EPCSweep runs every grid point as an independent scenario on the
// pool. Each point builds its own seeded platform, pager, and meters,
// so the merged results are byte-identical at any worker count.
func (r *Runner) EPCSweep() ([]EPCSweepPoint, error) {
	type cell struct {
		tenants int
		ratio   float64
		policy  string
	}
	var cells []cell
	for _, tn := range epcSweepGrid.tenants {
		for _, ra := range epcSweepGrid.ratios {
			for _, po := range epcSweepGrid.policies {
				cells = append(cells, cell{tn, ra, po})
			}
		}
	}
	return mapOrdered(r, len(cells), func(i int) (EPCSweepPoint, error) {
		c := cells[i]
		return epcSweepPoint(r.trace, r.series, c.tenants, c.ratio, c.policy)
	})
}

// epcSweepPoint measures one cell: the SGX leg (tenant enclaves
// faulting through a shared pager) and the native leg (the same ops
// with no enclave and no EPC constraint). With a series set attached,
// the pager samples per-tenant fault/evict/reload counters and the
// residency gauge per window, stamped by the accumulated tenant meters
// — the cell's own virtual clock.
func epcSweepPoint(tr *obs.Trace, set *series.Set, tenants int, ratio float64, policy string) (EPCSweepPoint, error) {
	pt := EPCSweepPoint{Tenants: tenants, Ratio: ratio, Policy: policy}
	track := fmt.Sprintf("epc-sweep/tenants=%d/ratio=%.1f/policy=%s", tenants, ratio, policy)

	pol, err := epcSweepPolicy(policy)
	if err != nil {
		return pt, err
	}
	// Seeded platform: fused secrets — and therefore evicted-page blobs
	// — are byte-stable across runs, not just the tallies.
	plat, err := core.NewPlatform("epc-sweep", core.PlatformConfig{
		EPCFrames: epcSweepFrames,
		Seed:      []byte(track),
	})
	if err != nil {
		return pt, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return pt, err
	}
	encs := make([]*core.Enclave, tenants)
	for i := range encs {
		if encs[i], err = plat.Launch(tenantProgram(i), signer); err != nil {
			return pt, err
		}
	}
	pt.Budget = plat.EPC().FreeCount()
	pt.WorkingSet = int(ratio * float64(pt.Budget) / float64(tenants))
	if pt.WorkingSet < 1 {
		pt.WorkingSet = 1
	}
	pt.Ops = epcSweepPasses * pt.WorkingSet
	pager := core.NewPager(plat.EPC(), pol)

	// SGX leg: tenants interleave round-robin within each pass — the
	// multi-tenant pressure pattern, where one tenant's faults evict
	// another's pages. Serial execution inside the point keeps the fault
	// sequence (and so every tally) deterministic; parallelism lives at
	// the point level, across independent platforms.
	meters := make([]*core.Meter, tenants)
	for i, e := range encs {
		meters[i] = e.Meter()
		meters[i].Reset() // launch cost is not part of the steady-state comparison
	}
	if sm := set.Sampler(track); sm != nil {
		// The cell has no event loop, so its virtual clock is the summed
		// tenant meters: monotone within the leg (meters only accumulate
		// after the reset above), and a pure function of the serial fault
		// sequence, so the windows are as deterministic as the tallies.
		pager.SetSeries(sm, func() uint64 {
			var c uint64
			for _, m := range meters {
				c += m.Snapshot().Cycles()
			}
			return c
		})
	}
	sp := tr.Begin(track, "sgx", meters...)
	for pass := 0; pass < epcSweepPasses; pass++ {
		for i := 0; i < pt.WorkingSet; i++ {
			for t, e := range encs {
				addr := uint64(i) * core.PageSize
				if _, err := pager.Touch(e.Meter(), e.ID(), addr); err != nil {
					return pt, fmt.Errorf("tenant %d page %d: %w", t, i, err)
				}
				if _, err := e.Call("op", nil); err != nil {
					return pt, err
				}
			}
		}
	}
	sp.End()
	for _, m := range meters {
		pt.SGX = pt.SGX.Add(m.Snapshot())
	}
	pt.Stats = pager.Stats()

	// Native leg: the same op count on plain hosts — no enclave
	// crossings, no EPC, no paging.
	nm := core.NewMeter()
	sp = tr.Begin(track, "native", nm)
	for op := 0; op < tenants*pt.Ops; op++ {
		nm.ChargeNormal(epcSweepOpCompute)
	}
	sp.End()
	pt.Native = nm.Snapshot()

	tr.Total(track, "run.total", pt.SGX.Add(pt.Native))
	totalOps := uint64(tenants * pt.Ops)
	pt.PerOpNativeCycles = pt.Native.Cycles() / totalOps
	pt.PerOpSGXCycles = pt.SGX.Cycles() / totalOps
	pt.Overhead = float64(pt.PerOpSGXCycles) / float64(pt.PerOpNativeCycles)

	// Surface the pager counters in the metric registry (alongside the
	// per-event pager.* counts the probe feeds) so sgxnet-trace -metrics
	// reports residency and paging volume for the whole sweep.
	if reg := tr.Registry(); reg != nil {
		reg.Add("pager.sweep.faults", pt.Stats.Faults)
		reg.Add("pager.sweep.evictions", pt.Stats.Evictions)
		reg.Add("pager.sweep.reloads", pt.Stats.Reloads)
		reg.Add("pager.sweep.peak_resident", uint64(pt.Stats.Peak))
	}
	return pt, nil
}

// RenderEPCSweep prints the sweep in its canonical order.
func RenderEPCSweep(w io.Writer, pts []EPCSweepPoint) {
	fmt.Fprintln(w, "EPC oversubscription sweep: per-op overhead vs native under memory pressure")
	fmt.Fprintf(w, "(%d-frame EPC, %d passes per tenant; ws = working-set pages per tenant)\n", epcSweepFrames, epcSweepPasses)
	tw := newTab(w)
	fmt.Fprintln(tw, "tenants\tws/share\tpolicy\tws\tfaults\tevict\treload\thit%\tnative/op\tsgx/op\toverhead")
	for _, p := range pts {
		touches := p.Stats.Hits + p.Stats.Faults
		hitPct := 0.0
		if touches > 0 {
			hitPct = 100 * float64(p.Stats.Hits) / float64(touches)
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%d\t%d\t%d\t%d\t%.1f\t%s\t%s\t%.2f×\n",
			p.Tenants, p.Ratio, p.Policy, p.WorkingSet,
			p.Stats.Faults, p.Stats.Evictions, p.Stats.Reloads, hitPct,
			fmtM(p.PerOpNativeCycles), fmtM(p.PerOpSGXCycles), p.Overhead)
	}
	tw.Flush()
}
