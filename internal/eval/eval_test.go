package eval

import (
	"bytes"
	"strings"
	"testing"
)

func within(t *testing.T, name string, got, want uint64, pctTol uint64) {
	t.Helper()
	lo := want * (100 - pctTol) / 100
	hi := want * (100 + pctTol) / 100
	if got < lo || got > hi {
		t.Errorf("%s = %d, want %d ±%d%%", name, got, want, pctTol)
	}
}

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		key := r.Role + "/noDH"
		if r.WithDH {
			key = r.Role + "/DH"
		}
		ref := paper.table1[key]
		if r.Tally.SGXU != ref[0] {
			t.Errorf("%s: SGX(U)=%d want %d", key, r.Tally.SGXU, ref[0])
		}
		if r.Tally.Normal != ref[1] {
			t.Errorf("%s: normal=%d want %d", key, r.Tally.Normal, ref[1])
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "challenger") {
		t.Fatal("render missing rows")
	}
}

func TestTable2ReproducesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		key := "1/plain"
		switch {
		case r.Packets == 1 && r.Crypto:
			key = "1/crypto"
		case r.Packets == 100 && !r.Crypto:
			key = "100/plain"
		case r.Packets == 100 && r.Crypto:
			key = "100/crypto"
		}
		ref := paper.table2[key]
		if r.Tally.SGXU != ref[0] {
			t.Errorf("%s: SGX(U)=%d want %d", key, r.Tally.SGXU, ref[0])
		}
		within(t, key+" normal", r.Tally.Normal, ref[1], 2)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "packets") {
		t.Fatal("render missing header")
	}
}

func TestTable3CountsMatchFormulas(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured != r.Scale {
			t.Errorf("%s: measured %d, formula predicts %d", r.Design, r.Measured, r.Scale)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "middlebox") {
		t.Fatal("render missing rows")
	}
}

func TestTable4ReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("30-AS deployment")
	}
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "native inter-domain", r.Native.InterDomain.Normal, paper.table4["inter/native"], 5)
	within(t, "sgx inter-domain", r.SGX.InterDomain.Normal, paper.table4["inter/sgx"], 5)
	within(t, "native as-local", r.Native.ASLocalAvg().Normal, paper.table4["aslocal/native"], 8)
	within(t, "sgx as-local", r.SGX.ASLocalAvg().Normal, paper.table4["aslocal/sgx"], 12)
	within(t, "sgx inter-domain SGX(U)", r.SGX.InterDomain.SGXU, paper.table4["inter/sgx/sgxu"], 10)
	within(t, "sgx as-local SGX(U)", r.SGX.ASLocalAvg().SGXU, paper.table4["aslocal/sgx/sgxu"], 10)
	var buf bytes.Buffer
	RenderTable4(&buf, r)
	if !strings.Contains(buf.String(), "inter-domain") {
		t.Fatal("render missing rows")
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	pts, err := Figure3([]int{5, 15, 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NativeCycles <= pts[i-1].NativeCycles {
			t.Fatal("native cycles not increasing with AS count")
		}
		if pts[i].SGXCycles <= pts[i-1].SGXCycles {
			t.Fatal("SGX cycles not increasing with AS count")
		}
	}
	for _, p := range pts {
		ratio := float64(p.SGXCycles) / float64(p.NativeCycles)
		if ratio < 1.4 || ratio > 2.4 {
			t.Fatalf("n=%d: cycle overhead ratio %.2f outside the paper's ~1.9 band", p.N, ratio)
		}
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("render broken")
	}
}

func TestAblationBatchSweepMonotone(t *testing.T) {
	pts, err := AblationBatchSweep([]int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PerPacket >= pts[i-1].PerPacket {
			t.Fatalf("per-packet cost not falling with batch size: %+v", pts)
		}
	}
	var buf bytes.Buffer
	RenderBatchSweep(&buf, pts)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationSMPCGap(t *testing.T) {
	c, err := AblationSMPC()
	if err != nil {
		t.Fatal(err)
	}
	if c.CostRatio < 1000 {
		t.Fatalf("SMPC/SGX ratio %.0f — not prohibitive", c.CostRatio)
	}
	var buf bytes.Buffer
	RenderSMPC(&buf, c)
	if !strings.Contains(buf.String(), "prohibitively") {
		t.Fatal("render broken")
	}
}

func TestAblationDHTLogarithmic(t *testing.T) {
	pts, err := AblationDHTLookups([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	// 8× more nodes should cost far less than 8× more hops.
	if pts[1].AvgHops > 4*pts[0].AvgHops+3 {
		t.Fatalf("lookups not scaling logarithmically: %+v", pts)
	}
	var buf bytes.Buffer
	RenderDHTSweep(&buf, pts)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationMiddleboxApproaches(t *testing.T) {
	c, err := AblationMiddleboxApproaches()
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio < 5 {
		t.Fatalf("SGX first-contact premium %.1f× — expected an order of magnitude", c.Ratio)
	}
	if c.MCTLSCached.Normal*5 > c.MCTLSFirstContact.Normal {
		t.Fatal("mcTLS caching did not amortize the DH")
	}
	var buf bytes.Buffer
	RenderMboxApproaches(&buf, c)
	if !strings.Contains(buf.String(), "mcTLS") {
		t.Fatal("render broken")
	}
}
