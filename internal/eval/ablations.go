package eval

import (
	"fmt"
	"io"

	"sgxnet/internal/chord"
	"sgxnet/internal/core"
	"sgxnet/internal/middlebox"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/smpc"
)

// Ablation experiments for the design choices DESIGN.md calls out.

// AblationSuite bundles the four deterministic ablation experiments.
type AblationSuite struct {
	Batch []BatchSweepPoint
	SMPC  *SMPCComparison
	DHT   []DHTSweepPoint
	Mbox  *MboxApproachComparison
}

// Ablations runs the four deterministic ablations as independent
// scenario runs on the pool. Each builds its own network and meters, so
// the merged suite is identical to running them back to back.
func (r *Runner) Ablations() (*AblationSuite, error) {
	s := &AblationSuite{}
	_, err := mapOrdered(r, 4, func(i int) (struct{}, error) {
		var err error
		switch i {
		case 0:
			s.Batch, err = ablationBatchSweep(r.trace, nil)
		case 1:
			s.SMPC, err = AblationSMPC()
		case 2:
			s.DHT, err = AblationDHTLookups(nil)
		case 3:
			s.Mbox, err = ablationMiddleboxApproaches(r.trace)
		}
		return struct{}{}, err
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// RenderAblations prints the whole suite in its canonical order.
func RenderAblations(w io.Writer, s *AblationSuite) {
	RenderBatchSweep(w, s.Batch)
	fmt.Fprintln(w)
	RenderSMPC(w, s.SMPC)
	fmt.Fprintln(w)
	RenderDHTSweep(w, s.DHT)
	fmt.Fprintln(w)
	RenderMboxApproaches(w, s.Mbox)
	fmt.Fprintln(w)
}

// BatchSweepPoint is one batch size of the I/O amortization ablation.
type BatchSweepPoint struct {
	Batch         int
	PerPacket     uint64 // normal instructions per packet
	PerPacketSGXU float64
}

// AblationBatchSweep quantifies how per-packet cost falls with batch
// size — the design lever behind the paper's "the cost can be amortized
// with batched I/O".
func AblationBatchSweep(batches []int) ([]BatchSweepPoint, error) {
	return ablationBatchSweep(nil, batches)
}

func ablationBatchSweep(tr *obs.Trace, batches []int) ([]BatchSweepPoint, error) {
	if len(batches) == 0 {
		batches = []int{1, 2, 5, 10, 25, 50, 100}
	}
	var pts []BatchSweepPoint
	for _, b := range batches {
		t, err := MeasureSendTraced(tr, fmt.Sprintf("ablation/batch/n=%d", b), b, false)
		if err != nil {
			return nil, err
		}
		pts = append(pts, BatchSweepPoint{
			Batch:         b,
			PerPacket:     t.Normal / uint64(b),
			PerPacketSGXU: float64(t.SGXU) / float64(b),
		})
	}
	return pts, nil
}

// RenderBatchSweep prints the sweep.
func RenderBatchSweep(w io.Writer, pts []BatchSweepPoint) {
	fmt.Fprintln(w, "Ablation: in-enclave I/O batching (per-packet cost)")
	tw := newTab(w)
	fmt.Fprintln(tw, "batch\tnormal/pkt\tSGX(U)/pkt")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\n", p.Batch, p.PerPacket, p.PerPacketSGXU)
	}
	tw.Flush()
}

// SMPCComparison contrasts the SMPC baseline's cost for one private
// route comparison against the SGX enclave doing it directly — the §3.1
// motivation ("the computational complexity of SMPC is prohibitively
// expensive").
type SMPCComparison struct {
	SMPCTally   core.Tally
	ANDGates    int
	DirectCost  uint64 // instruction cost of the in-enclave comparison
	CostRatio   float64
	CyclesRatio float64
}

// AblationSMPC runs one private route comparison both ways.
func AblationSMPC() (*SMPCComparison, error) {
	n := netsim.New()
	h0, err := n.AddHost("p0", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		return nil, err
	}
	h1, err := n.AddHost("p1", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		return nil, err
	}
	prefer, tally, err := smpc.RoutePrefer(n, h0, h1, 250, 2, 180, 1, 8)
	if err != nil {
		return nil, err
	}
	if !prefer {
		return nil, fmt.Errorf("eval: SMPC returned wrong preference")
	}
	c := smpc.RoutePreferCircuit(8, 8)
	// Direct in-enclave comparison: one candidate evaluation in the
	// controller's cost model.
	direct := uint64(6_000) // sdnctl.CostRouteEval
	return &SMPCComparison{
		SMPCTally:   tally,
		ANDGates:    c.ANDCount(),
		DirectCost:  direct,
		CostRatio:   float64(tally.Normal) / float64(direct),
		CyclesRatio: float64(tally.Cycles()) / (1.8 * float64(direct)),
	}, nil
}

// RenderSMPC prints the comparison.
func RenderSMPC(w io.Writer, c *SMPCComparison) {
	fmt.Fprintln(w, "Ablation: SMPC baseline vs SGX for one private route comparison")
	tw := newTab(w)
	fmt.Fprintln(tw, "approach\tnormal instructions\tnote")
	fmt.Fprintf(tw, "GMW SMPC (2 parties)\t%s\t%d AND gates, 1 OT each\n", fmtM(c.SMPCTally.Normal), c.ANDGates)
	fmt.Fprintf(tw, "SGX enclave (direct)\t%s\tone decision-process evaluation\n", fmtM(c.DirectCost))
	tw.Flush()
	fmt.Fprintf(w, "SMPC / SGX cost ratio ≈ %.0f× — the paper's \"prohibitively expensive\"\n", c.CostRatio)
}

// DHTSweepPoint is one ring size of the membership ablation.
type DHTSweepPoint struct {
	Nodes   int
	AvgHops float64
}

// AblationDHTLookups measures Chord lookup hops vs ring size — the
// scalability property that lets the fully SGX-enabled Tor drop its
// directory authorities (§3.2).
func AblationDHTLookups(sizes []int) ([]DHTSweepPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128}
	}
	var pts []DHTSweepPoint
	for _, n := range sizes {
		ring := chord.NewRing()
		var nodes []*chord.Node
		for i := 0; i < n; i++ {
			nd, err := ring.Join(fmt.Sprintf("or-%d", i))
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, nd)
		}
		ring.StabilizeAll(3)
		total, count := 0, 0
		for i := 0; i < 200; i++ {
			_, hops, err := nodes[i%len(nodes)].FindSuccessor(chord.HashKey(fmt.Sprintf("probe-%d", i)))
			if err != nil {
				return nil, err
			}
			total += hops
			count++
		}
		pts = append(pts, DHTSweepPoint{Nodes: n, AvgHops: float64(total) / float64(count)})
	}
	return pts, nil
}

// RenderDHTSweep prints the sweep.
func RenderDHTSweep(w io.Writer, pts []DHTSweepPoint) {
	fmt.Fprintln(w, "Ablation: DHT membership lookups (directory-less Tor, §3.2)")
	tw := newTab(w)
	fmt.Fprintln(tw, "ORs\tavg lookup hops")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2f\n", p.Nodes, p.AvgHops)
	}
	tw.Flush()
}

// MboxApproachComparison contrasts first-contact key-provisioning cost
// between the SGX design (§3.3: remote attestation, then sealed key
// transfer) and an mcTLS-style design (key transfer to a public key,
// no attestation). The SGX design pays ~20× more instructions up front
// and in exchange binds key release to a measured build — the trade the
// paper proposes and mcTLS cannot make.
type MboxApproachComparison struct {
	SGXFirstContact   core.Tally // endpoint + middlebox enclaves, one attestation + provisioning
	MCTLSFirstContact core.Tally // endpoint + box, DH + provisioning
	MCTLSCached       core.Tally // a later session's provisioning
	Ratio             float64
}

// AblationMiddleboxApproaches measures both designs live.
func AblationMiddleboxApproaches() (*MboxApproachComparison, error) {
	return ablationMiddleboxApproaches(nil)
}

func ablationMiddleboxApproaches(tr *obs.Trace) (*MboxApproachComparison, error) {
	out := &MboxApproachComparison{}

	// SGX side: one middlebox, meters reset right before provisioning.
	rig, err := NewMboxRig(1)
	if err != nil {
		return nil, err
	}
	rig.Endpoint.Meter().Reset()
	rig.Mboxes[0].Enclave().Meter().Reset()
	if _, err := rig.ProvisionAllTraced(tr, "ablation/mbox"); err != nil {
		return nil, err
	}
	out.SGXFirstContact = rig.Endpoint.Meter().Snapshot().Add(rig.Mboxes[0].Enclave().Meter().Snapshot())

	// mcTLS side.
	m := core.NewMeter()
	box, err := middlebox.NewMCTLSBox(m, "mc0", DPIPatterns, false)
	if err != nil {
		return nil, err
	}
	ep := middlebox.NewMCTLSEndpoint("client")
	m.Reset()
	if err := ep.Provision(m, box, rig.Session.ExportKeys()); err != nil {
		return nil, err
	}
	out.MCTLSFirstContact = m.Snapshot()
	m.Reset()
	if err := ep.Provision(m, box, rig.Session.ExportKeys()); err != nil {
		return nil, err
	}
	out.MCTLSCached = m.Snapshot()
	out.Ratio = float64(out.SGXFirstContact.Normal) / float64(out.MCTLSFirstContact.Normal)
	return out, nil
}

// RenderMboxApproaches prints the comparison.
func RenderMboxApproaches(w io.Writer, c *MboxApproachComparison) {
	fmt.Fprintln(w, "Ablation: SGX vs mcTLS-style middlebox key provisioning (§3.3)")
	tw := newTab(w)
	fmt.Fprintln(tw, "design\tfirst contact (normal)\tcached session\ttrust in middlebox code")
	fmt.Fprintf(tw, "SGX attestation\t%s\t~key-seal only\tmeasured build, hardware-verified\n", fmtM(c.SGXFirstContact.Normal))
	fmt.Fprintf(tw, "mcTLS-style\t%s\t%s\tnone — any software behind the key\n",
		fmtM(c.MCTLSFirstContact.Normal), fmtM(c.MCTLSCached.Normal))
	tw.Flush()
	fmt.Fprintf(w, "SGX first-contact premium ≈ %.0f× — amortized over the connection lifetime (attestation runs once, §5)\n", c.Ratio)
}
