package topo

import (
	"testing"
	"testing/quick"
)

func TestAddLinkSymmetry(t *testing.T) {
	tp := NewTopology(3)
	if err := tp.AddLink(0, 1, RelCustomer); err != nil {
		t.Fatal(err)
	}
	r01, _ := tp.Rel(0, 1)
	r10, _ := tp.Rel(1, 0)
	if r01 != RelCustomer || r10 != RelProvider {
		t.Fatalf("r01=%v r10=%v", r01, r10)
	}
	if err := tp.AddLink(0, 1, RelPeer); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := tp.AddLink(0, 0, RelPeer); err == nil {
		t.Fatal("self link accepted")
	}
	if err := tp.AddLink(0, 9, RelPeer); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestInvertInvolution(t *testing.T) {
	for _, r := range []Relationship{RelCustomer, RelPeer, RelProvider} {
		if r.Invert().Invert() != r {
			t.Fatalf("Invert not involutive for %v", r)
		}
	}
	if RelPeer.Invert() != RelPeer {
		t.Fatal("peer must invert to peer")
	}
	if RelCustomer.Invert() != RelProvider {
		t.Fatal("customer must invert to provider")
	}
}

func TestRelationshipString(t *testing.T) {
	if RelCustomer.String() != "customer" || RelPeer.String() != "peer" ||
		RelProvider.String() != "provider" || Relationship(9).String() == "" {
		t.Fatal("bad strings")
	}
}

func TestDefaultLocalPrefOrdering(t *testing.T) {
	tp := NewTopology(4)
	tp.AddLink(0, 1, RelCustomer)
	tp.AddLink(0, 2, RelPeer)
	tp.AddLink(0, 3, RelProvider)
	c, p, pr := tp.LocalPref(0, 1), tp.LocalPref(0, 2), tp.LocalPref(0, 3)
	if !(c > p && p > pr) {
		t.Fatalf("pref ordering violated: customer=%d peer=%d provider=%d", c, p, pr)
	}
	tp.SetLocalPref(0, 3, 999)
	if tp.LocalPref(0, 3) != 999 {
		t.Fatal("explicit pref ignored")
	}
}

func TestValidateDetectsDisconnection(t *testing.T) {
	tp := NewTopology(4)
	tp.AddLink(0, 1, RelPeer)
	tp.AddLink(2, 3, RelPeer)
	if err := tp.Validate(); err == nil {
		t.Fatal("disconnected topology validated")
	}
}

func TestRandomTopologyProperties(t *testing.T) {
	for _, n := range []int{2, 5, 10, 30, 50} {
		tp, err := Random(Config{N: n, Seed: 42})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tp.N() != n {
			t.Fatalf("n=%d: N()=%d", n, tp.N())
		}
		if err := tp.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if _, err := Random(Config{N: 1, Seed: 1}); err == nil {
		t.Fatal("degenerate size accepted")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	a, err := Random(Config{N: 30, Seed: 7, PrefJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(Config{N: 30, Seed: 7, PrefJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Links() != b.Links() {
		t.Fatal("same seed, different link count")
	}
	for as := 0; as < 30; as++ {
		na, nb := a.Neighbors(as), b.Neighbors(as)
		if len(na) != len(nb) {
			t.Fatalf("AS%d neighbor mismatch", as)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("AS%d neighbor %d differs", as, i)
			}
			if a.LocalPref(as, na[i]) != b.LocalPref(as, nb[i]) {
				t.Fatalf("AS%d pref differs", as)
			}
		}
	}
	c, err := Random(Config{N: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Links() == a.Links() {
		// Not impossible, but with these sizes a collision would be
		// suspicious enough to flag.
		t.Log("warning: different seeds produced equal link counts")
	}
}

// Property: every generated topology is connected, relationship-symmetric,
// and every non-tier-1 AS has at least one provider.
func TestRandomTopologyInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%49)
		tp, err := Random(Config{N: n, Seed: seed})
		if err != nil {
			return false
		}
		if tp.Validate() != nil {
			return false
		}
		// Everyone except AS0 must have at least one neighbor.
		for a := 0; a < n; a++ {
			if len(tp.Neighbors(a)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
