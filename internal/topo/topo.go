// Package topo generates and validates AS-level network topologies with
// Gao–Rexford business relationships (customer/provider/peer) and per-AS
// local preferences — the "random topology with hypothetical business
// relationships" of the paper's §5 inter-domain routing evaluation.
package topo

import (
	"fmt"
	"math/rand"
	"sort"
)

// Relationship is the business relationship an AS has with a neighbor,
// from the AS's own perspective.
type Relationship int8

const (
	// RelCustomer: the neighbor is my customer (it pays me).
	RelCustomer Relationship = iota
	// RelPeer: settlement-free peering.
	RelPeer
	// RelProvider: the neighbor is my provider (I pay it).
	RelProvider
)

func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return fmt.Sprintf("Relationship(%d)", int8(r))
	}
}

// Invert returns the relationship from the other side's perspective.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return RelPeer
	}
}

// Topology is an AS graph with relationships and local preferences.
type Topology struct {
	n         int
	rel       map[[2]int]Relationship
	neighbors map[int][]int
	prefs     map[int]map[int]int
}

// NewTopology creates an empty topology over ASes 0..n-1.
func NewTopology(n int) *Topology {
	return &Topology{
		n:         n,
		rel:       make(map[[2]int]Relationship),
		neighbors: make(map[int][]int),
		prefs:     make(map[int]map[int]int),
	}
}

// N returns the number of ASes.
func (t *Topology) N() int { return t.n }

// AddLink connects a and b with a's-perspective relationship rel,
// recording the inverse on b's side.
func (t *Topology) AddLink(a, b int, rel Relationship) error {
	if a == b {
		return fmt.Errorf("topo: self link at AS%d", a)
	}
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		return fmt.Errorf("topo: link %d–%d out of range", a, b)
	}
	if _, dup := t.rel[[2]int{a, b}]; dup {
		return fmt.Errorf("topo: duplicate link %d–%d", a, b)
	}
	t.rel[[2]int{a, b}] = rel
	t.rel[[2]int{b, a}] = rel.Invert()
	t.neighbors[a] = insertSorted(t.neighbors[a], b)
	t.neighbors[b] = insertSorted(t.neighbors[b], a)
	return nil
}

// insertSorted inserts v into the ascending slice s. Keeping adjacency
// lists sorted at construction lets the read paths skip per-call sorts.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Rel returns a's relationship toward neighbor b.
func (t *Topology) Rel(a, b int) (Relationship, bool) {
	r, ok := t.rel[[2]int{a, b}]
	return r, ok
}

// Neighbors returns a's neighbors in ascending order.
func (t *Topology) Neighbors(a int) []int {
	return append([]int(nil), t.neighbors[a]...)
}

// EachNeighbor calls f for each of a's neighbors in ascending order
// without allocating — the hot-loop alternative to Neighbors. Safe for
// concurrent readers once construction is complete.
func (t *Topology) EachNeighbor(a int, f func(nbr int)) {
	for _, nbr := range t.neighbors[a] {
		f(nbr)
	}
}

// Links returns the number of undirected links.
func (t *Topology) Links() int { return len(t.rel) / 2 }

// SetLocalPref sets the preference AS a assigns to routes learned from
// neighbor nbr (higher wins).
func (t *Topology) SetLocalPref(a, nbr, pref int) {
	if t.prefs[a] == nil {
		t.prefs[a] = make(map[int]int)
	}
	t.prefs[a][nbr] = pref
}

// LocalPref returns the preference AS a assigns to neighbor nbr. The
// default follows the standard economic ordering: customer routes over
// peer routes over provider routes.
func (t *Topology) LocalPref(a, nbr int) int {
	if p, ok := t.prefs[a][nbr]; ok {
		return p
	}
	switch r, _ := t.Rel(a, nbr); r {
	case RelCustomer:
		return 300
	case RelPeer:
		return 200
	default:
		return 100
	}
}

// Validate checks structural invariants: symmetric inverse relationships
// and a connected graph.
func (t *Topology) Validate() error {
	for k, r := range t.rel {
		inv, ok := t.rel[[2]int{k[1], k[0]}]
		if !ok || inv != r.Invert() {
			return fmt.Errorf("topo: asymmetric link %d–%d", k[0], k[1])
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topo: graph not connected")
	}
	return nil
}

// Connected reports whether all ASes are reachable from AS 0.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range t.neighbors[a] {
			if !seen[b] {
				seen[b] = true
				count++
				stack = append(stack, b)
			}
		}
	}
	return count == t.n
}

// Config parameterizes random topology generation.
type Config struct {
	N    int   // number of ASes
	Seed int64 // RNG seed; identical seeds give identical topologies
	// Tier1Frac is the fraction of ASes in the fully-meshed tier-1 clique
	// (default 0.1, minimum 1 AS).
	Tier1Frac float64
	// MaxProviders bounds the number of providers per non-tier-1 AS
	// (default 2).
	MaxProviders int
	// PeerProb is the probability of a lateral peering edge between two
	// non-tier-1 ASes of similar rank (default 0.08).
	PeerProb float64
	// PrefJitter, when true, perturbs the default local preferences so
	// ties are broken differently per AS.
	PrefJitter bool
}

func (c Config) withDefaults() Config {
	if c.Tier1Frac <= 0 {
		c.Tier1Frac = 0.1
	}
	if c.MaxProviders <= 0 {
		c.MaxProviders = 2
	}
	if c.PeerProb <= 0 {
		c.PeerProb = 0.08
	}
	return c
}

// Random generates a connected AS topology with the usual Internet-like
// structure: a tier-1 clique of peers, provider–customer edges downward,
// and sparse lateral peering.
func Random(cfg Config) (*Topology, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("topo: need at least 2 ASes, got %d", cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTopology(cfg.N)
	t1 := int(float64(cfg.N) * cfg.Tier1Frac)
	if t1 < 1 {
		t1 = 1
	}
	if t1 > cfg.N {
		t1 = cfg.N
	}
	// Tier-1 clique: everyone peers with everyone.
	for a := 0; a < t1; a++ {
		for b := a + 1; b < t1; b++ {
			if err := t.AddLink(a, b, RelPeer); err != nil {
				return nil, err
			}
		}
	}
	// Every other AS buys transit from 1..MaxProviders earlier ASes.
	for a := t1; a < cfg.N; a++ {
		nProv := 1 + rng.Intn(cfg.MaxProviders)
		chosen := map[int]bool{}
		for p := 0; p < nProv; p++ {
			prov := rng.Intn(a)
			if chosen[prov] {
				continue
			}
			chosen[prov] = true
			// a's provider: from a's perspective the neighbor is a provider.
			if err := t.AddLink(a, prov, RelProvider); err != nil {
				return nil, err
			}
		}
		// Sparse lateral peering with a nearby-rank AS.
		if a > t1 && rng.Float64() < cfg.PeerProb {
			b := t1 + rng.Intn(a-t1)
			if _, dup := t.Rel(a, b); !dup && a != b {
				if err := t.AddLink(a, b, RelPeer); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.PrefJitter {
		for a := 0; a < cfg.N; a++ {
			for _, nbr := range t.Neighbors(a) {
				base := t.LocalPref(a, nbr)
				t.SetLocalPref(a, nbr, base+rng.Intn(50))
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
