package xcall

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sgxnet/internal/core"
)

// testEnclave launches a minimal enclave with an echo entry point and
// an echo host, returns it with its launch cost already drained.
func testEnclave(t *testing.T) *core.Enclave {
	t.Helper()
	plat, err := core.NewPlatform("xcall-test", core.PlatformConfig{Seed: []byte("xcall-test")})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	prog := &core.Program{
		Name:    "xcall-echo",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"echo": func(env *core.Env, arg []byte) ([]byte, error) {
				return append([]byte(nil), arg...), nil
			},
		},
	}
	enc, err := plat.Launch(prog, signer)
	if err != nil {
		t.Fatal(err)
	}
	enc.BindHost(core.HostFunc(func(service string, arg []byte) ([]byte, error) {
		return append([]byte("host:"), arg...), nil
	}))
	enc.Meter().Reset()
	return enc
}

func TestDescriptorRoundTrip(t *testing.T) {
	descs := []Descriptor{
		{Kind: DescCall, Fn: "or.cell", Arg: []byte("payload")},
		{Kind: DescOCall, Fn: "net.send", Arg: nil},
		{Kind: DescCall, Fn: "", Arg: bytes.Repeat([]byte{0xAB}, 1500)},
	}
	frame, err := MarshalBatch(descs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(descs) {
		t.Fatalf("got %d descriptors, want %d", len(got), len(descs))
	}
	for i := range descs {
		if got[i].Kind != descs[i].Kind || got[i].Fn != descs[i].Fn || !bytes.Equal(got[i].Arg, descs[i].Arg) {
			t.Fatalf("descriptor %d mismatch: %+v vs %+v", i, got[i], descs[i])
		}
	}
	// Canonical: re-encoding reproduces the frame byte for byte.
	again, err := MarshalBatch(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("re-encoded frame differs")
	}
}

func TestDescriptorRejects(t *testing.T) {
	genuine, err := MarshalBatch([]Descriptor{{Kind: DescCall, Fn: "f", Arg: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": genuine[:5],
		"truncated arg":    genuine[:len(genuine)-1],
		"trailing bytes":   append(append([]byte(nil), genuine...), 0),
		"bad kind":         append([]byte{0, 0, 0, 1}, 7, 1, 'f', 0, 0, 0, 0),
		"oversized batch":  {0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, b := range cases {
		if _, err := UnmarshalBatch(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := MarshalBatch(make([]Descriptor, MaxBatch+1)); err == nil {
		t.Error("MarshalBatch accepted oversized batch")
	}
}

func TestCallRingBatchesAndFallsBack(t *testing.T) {
	enc := testEnclave(t)
	r := NewCallRing(enc, Config{Capacity: 8, Batch: 4, SpinBudget: 100})

	// First call: worker parked (never launched) → doorbell fallback,
	// a full synchronous EENTER/EEXIT pair.
	out, err := r.Call("echo", []byte("a"))
	if err != nil || string(out) != "a" {
		t.Fatalf("call 1: %q, %v", out, err)
	}
	if got := enc.Meter().Snapshot().SGXU; got != 2 {
		t.Fatalf("fallback charged %d SGX, want 2", got)
	}

	// Next four calls: three enqueues, then the fourth fills the batch
	// and drains — one amortized crossing for the lot.
	for i := 0; i < 4; i++ {
		if _, err := r.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tal := enc.Meter().Snapshot()
	wantSGX := uint64(2 + core.SGXInstRingDrain)
	if tal.SGXU != wantSGX {
		t.Fatalf("after batch: %d SGX, want %d", tal.SGXU, wantSGX)
	}
	wantNormal := uint64(4*(core.CostRingEnqueue+core.CostRingSpinPoll) + 4*core.CostRingDequeue)
	if tal.Normal != wantNormal {
		t.Fatalf("after batch: %d normal, want %d", tal.Normal, wantNormal)
	}
	st := r.Stats()
	if st.Calls != 4 || st.Drains != 1 || st.Drained != 4 || st.Fallbacks != 1 || st.ParkedFallbacks != 1 || st.Wakes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCallRingFullFallsBack(t *testing.T) {
	enc := testEnclave(t)
	// Capacity below the batch target: the ring fills before a batch
	// assembles and further submissions fall back synchronously.
	r := NewCallRing(enc, Config{Capacity: 2, Batch: 8, SpinBudget: 1000})
	for i := 0; i < 5; i++ {
		if _, err := r.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	// Call 1 doorbell, calls 2–3 enqueue, calls 4–5 ring-full.
	if st.ParkedFallbacks != 1 || st.Calls != 2 || st.FullFallbacks != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxOccupancy != 2 {
		t.Fatalf("max occupancy %d, want 2", st.MaxOccupancy)
	}
}

func TestSpinBudgetDrainsPartialAndParks(t *testing.T) {
	enc := testEnclave(t)
	r := NewCallRing(enc, Config{Capacity: 64, Batch: 16, SpinBudget: 2})
	// Call 1: doorbell. Calls 2–4: enqueue; at call 4 the worker has
	// polled 3 > 2 times since its last drain, so it drains the 3
	// stragglers and parks. Call 5: doorbell again.
	for i := 0; i < 5; i++ {
		if _, err := r.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Drains != 1 || st.Drained != 3 || st.Parks != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ParkedFallbacks != 2 || st.Wakes != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFlushDrainsRemainderThenIsFree(t *testing.T) {
	enc := testEnclave(t)
	r := NewCallRing(enc, Config{Capacity: 8, Batch: 8, SpinBudget: 100})
	r.Call("echo", nil) // doorbell
	r.Call("echo", nil) // enqueue
	r.Call("echo", nil) // enqueue
	before := enc.Meter().Snapshot()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	after := enc.Meter().Snapshot()
	if after.SGXU-before.SGXU != core.SGXInstRingDrain {
		t.Fatalf("flush charged %d SGX, want %d", after.SGXU-before.SGXU, core.SGXInstRingDrain)
	}
	st := r.Stats()
	if st.Drains != 1 || st.Drained != 2 || st.Parks != 1 {
		t.Fatalf("stats after flush: %+v", st)
	}
	// A second flush (worker already parked, ring empty) is free.
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := enc.Meter().Snapshot(); got != after {
		t.Fatalf("empty flush charged: %+v vs %+v", got, after)
	}
	if st2 := r.Stats(); st2 != st {
		t.Fatalf("empty flush changed stats: %+v vs %+v", st2, st)
	}
}

func TestOversizedArgFallsBack(t *testing.T) {
	enc := testEnclave(t)
	r := NewCallRing(enc, Config{Capacity: 8, Batch: 8, SpinBudget: 100})
	r.Call("echo", nil) // doorbell: worker hot
	big := make([]byte, MaxArgBytes+1)
	if _, err := r.Call("echo", big); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.FullFallbacks != 1 {
		t.Fatalf("oversized arg not a slot fallback: %+v", st)
	}
}

func TestOCallRing(t *testing.T) {
	enc := testEnclave(t)
	host := core.HostFunc(func(service string, arg []byte) ([]byte, error) {
		return []byte(service), nil
	})
	r := NewOCallRing(enc, host, Config{Capacity: 8, Batch: 2, SpinBudget: 100})

	// Doorbell fallback pays the synchronous EEXIT/ERESUME pair.
	out, err := r.OCall("net.send", []byte("x"))
	if err != nil || string(out) != "net.send" {
		t.Fatalf("ocall 1: %q, %v", out, err)
	}
	if got := enc.Meter().Snapshot().SGXU; got != 2 {
		t.Fatalf("ocall fallback charged %d SGX, want 2", got)
	}
	// Two more: second completes a batch of 2 → one amortized drain.
	r.OCall("net.send", nil)
	r.OCall("net.send", nil)
	tal := enc.Meter().Snapshot()
	if want := uint64(2 + core.SGXInstRingDrain); tal.SGXU != want {
		t.Fatalf("%d SGX, want %d", tal.SGXU, want)
	}
	if st := r.Stats(); st.Calls != 2 || st.Drains != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRingDeterminism(t *testing.T) {
	run := func() (core.Tally, Stats) {
		enc := testEnclave(t)
		r := NewCallRing(enc, Config{Capacity: 16, Batch: 4, SpinBudget: 6})
		for i := 0; i < 41; i++ {
			if _, err := r.Call("echo", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
		return enc.Meter().Snapshot(), r.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: %+v/%+v vs %+v/%+v", t1, s1, t2, s2)
	}
	if s1.Fallbacks == 0 || s1.Drains == 0 {
		t.Fatalf("sequence exercised nothing: %+v", s1)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Capacity != 64 || c.Batch != 16 || c.SpinBudget != 64 {
		t.Fatalf("defaults: %+v", c)
	}
	if got := (Config{Capacity: 1 << 20}).WithDefaults().Capacity; got != MaxBatch {
		t.Fatalf("capacity clamp: %d", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Calls: 1, Drains: 2, MaxOccupancy: 3}
	b := Stats{Calls: 10, Fallbacks: 5, MaxOccupancy: 7}
	sum := a.Add(b)
	if sum.Calls != 11 || sum.Drains != 2 || sum.Fallbacks != 5 || sum.MaxOccupancy != 7 {
		t.Fatalf("sum: %+v", sum)
	}
}

// TestSwitchlessCheaperThanSync pins the headline property: at batch
// ≥16 the ring cuts modeled crossing work by well over 2×.
func TestSwitchlessCheaperThanSync(t *testing.T) {
	const n = 64
	sync := testEnclave(t)
	for i := 0; i < n; i++ {
		if _, err := sync.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	swl := testEnclave(t)
	r := NewCallRing(swl, Config{Capacity: 64, Batch: 16, SpinBudget: 64})
	for i := 0; i < n; i++ {
		if _, err := r.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	syncSGX, swlSGX := sync.Meter().Snapshot().SGXU, swl.Meter().Snapshot().SGXU
	if swlSGX*2 > syncSGX {
		t.Fatalf("switchless %d SGX not ≥2× under sync %d", swlSGX, syncSGX)
	}
}

func ExampleCallRing() {
	plat, _ := core.NewPlatform("example", core.PlatformConfig{Seed: []byte("example")})
	signer, _ := core.NewSigner()
	enc, _ := plat.Launch(&core.Program{
		Name: "example", Version: "1.0",
		Handlers: map[string]core.Handler{
			"double": func(env *core.Env, arg []byte) ([]byte, error) {
				return append(arg, arg...), nil
			},
		},
	}, signer)
	r := NewCallRing(enc, Config{Batch: 4})
	out, _ := r.Call("double", []byte("ab"))
	fmt.Println(string(out))
	// Output: abab
}

// countingProbe tallies observations by kind (concurrency-safe: rings
// may be driven from multiple goroutines).
type countingProbe struct {
	mu     sync.Mutex
	counts map[string]uint64
}

func (p *countingProbe) Observe(kind string, n uint64) {
	p.mu.Lock()
	p.counts[kind] = p.counts[kind] + n
	p.mu.Unlock()
}

func (p *countingProbe) get(kind string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[kind]
}

// TestCallFallbackFailureFiresNoProbes is the validate-then-charge
// regression test for CallRing.Call: a fallback whose synchronous call
// fails must leave no xcall probe observations behind — only successful
// fallbacks are real crossings worth accounting.
func TestCallFallbackFailureFiresNoProbes(t *testing.T) {
	enc := testEnclave(t)
	probe := &countingProbe{counts: map[string]uint64{}}
	enc.Platform().SetProbe(probe)
	r := NewCallRing(enc, Config{Capacity: 8, Batch: 4, SpinBudget: 100})

	// First submission is the doorbell fallback; the unknown entry point
	// makes the synchronous call fail.
	if _, err := r.Call("no-such-entry", nil); err == nil {
		t.Fatal("unknown entry point succeeded")
	}
	for _, kind := range []string{KindFallback, KindFallbackFull, KindFallbackParked, KindWake} {
		if got := probe.get(kind); got != 0 {
			t.Fatalf("failed fallback fired %s ×%d, want none", kind, got)
		}
	}

	// A successful fallback (the ring re-parked after Flush) still fires
	// them — the control that keeps this test meaningful.
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Call("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if probe.get(KindFallback) != 1 || probe.get(KindFallbackParked) != 1 {
		t.Fatalf("successful fallback not observed: %+v", probe.counts)
	}
}

// TestOCallFallbackFailureChargesNothing: an OCall fallback whose host
// service fails must charge no synchronous crossing and fire no probes.
func TestOCallFallbackFailureChargesNothing(t *testing.T) {
	enc := testEnclave(t)
	probe := &countingProbe{counts: map[string]uint64{}}
	enc.Platform().SetProbe(probe)
	refuse := core.HostFunc(func(service string, arg []byte) ([]byte, error) {
		return nil, fmt.Errorf("host refuses %q", service)
	})
	r := NewOCallRing(enc, refuse, Config{Capacity: 8, Batch: 4, SpinBudget: 100})
	enc.Meter().Reset()

	if _, err := r.OCall("svc", nil); err == nil {
		t.Fatal("refusing host succeeded")
	}
	if tal := enc.Meter().Snapshot(); tal.SGXU != 0 || tal.Normal != 0 {
		t.Fatalf("failed OCall fallback charged %+v, want zero", tal)
	}
	for _, kind := range []string{KindFallback, KindFallbackParked, core.KindEEXIT, core.KindERESUME} {
		if got := probe.get(kind); got != 0 {
			t.Fatalf("failed OCall fallback fired %s ×%d, want none", kind, got)
		}
	}
}
