package xcall

import (
	"bytes"
	"testing"
)

// FuzzRingDescriptor fuzzes the drain-frame decoder — the boundary
// where the in-enclave worker parses host-owned shared memory. The
// invariants: never panic, reject anything out of bounds, and accept
// only frames whose canonical re-encoding is byte-identical (no
// malleability: two distinct frames cannot decode to the same batch).
func FuzzRingDescriptor(f *testing.F) {
	genuine, err := MarshalBatch([]Descriptor{
		{Kind: DescCall, Fn: "or.cell", Arg: []byte("cell-payload")},
		{Kind: DescOCall, Fn: "net.send", Arg: []byte{1, 2, 3}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add(genuine[:len(genuine)-4])             // truncated
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // oversized batch count
	f.Add([]byte{0, 0, 0, 1, 7, 0, 0, 0, 0, 0}) // bad descriptor kind

	f.Fuzz(func(t *testing.T, data []byte) {
		descs, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		if len(descs) > MaxBatch {
			t.Fatalf("accepted batch of %d > MaxBatch", len(descs))
		}
		for i, d := range descs {
			if d.Kind != DescCall && d.Kind != DescOCall {
				t.Fatalf("descriptor %d: accepted kind %d", i, d.Kind)
			}
			if len(d.Fn) > MaxFnLen || len(d.Arg) > MaxArgBytes {
				t.Fatalf("descriptor %d: accepted out-of-bounds lengths", i)
			}
		}
		again, err := MarshalBatch(descs)
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical frame:\n in: %x\nout: %x", data, again)
		}
	})
}
