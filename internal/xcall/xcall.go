package xcall

import (
	"fmt"
	"sync"

	"sgxnet/internal/core"
)

// Probe kinds reported through the platform's core.Probe (and so
// through obs.Registry when one is installed). Counter identities a
// metrics consumer can check: xcall.fallback = xcall.fallback.full +
// xcall.fallback.parked, and xcall.wake = xcall.fallback.parked.
const (
	// KindCall is one switchless submission (descriptor enqueued).
	KindCall = "xcall.call"
	// KindDrain counts descriptors picked up by the worker, reported
	// per drained batch.
	KindDrain = "xcall.drain"
	// KindFallback is one synchronous-crossing fallback.
	KindFallback = "xcall.fallback"
	// KindFallbackFull is a fallback because the ring was full (or the
	// descriptor did not fit a slot).
	KindFallbackFull = "xcall.fallback.full"
	// KindFallbackParked is a fallback because the worker had parked;
	// the synchronous call doubles as the doorbell that wakes it.
	KindFallbackParked = "xcall.fallback.parked"
	// KindPark is the worker parking after its spin budget expired (or
	// on Flush).
	KindPark = "xcall.park"
	// KindWake is the worker resuming on a doorbell fallback.
	KindWake = "xcall.wake"
)

// Config sizes one ring. The zero value selects the defaults below.
type Config struct {
	// Capacity is the number of descriptor slots. A full ring falls
	// back to the synchronous crossing. Default 64, clamped to
	// MaxBatch. Setting Capacity < Batch is legal: the ring then fills
	// before a batch assembles and submissions fall back (exercised by
	// the ring-full tests).
	Capacity int

	// Batch is the drain target: the worker picks up the whole ring as
	// soon as occupancy reaches Batch, paying one amortized crossing
	// for the lot. Default 16.
	Batch int

	// Series, when non-nil, samples the ring's behavior into a windowed
	// time-series set: occupancy after each enqueue, drain batch sizes,
	// spin polls versus parks. Because it rides the Config, every ring a
	// deployment derives from this config (tor ORs, the record engine,
	// the quoting enclave) reports through the same probe with no extra
	// plumbing. Zero-cost when nil.
	Series *SeriesConfig

	// SpinBudget is how many polls the in-enclave worker spends
	// assembling one batch before giving up: each submission while the
	// worker is hot costs it one poll, and when the count since the
	// last drain exceeds SpinBudget the worker drains what it has and
	// parks. The next submission finds it parked and falls back to a
	// synchronous crossing, which doubles as the doorbell. A generous
	// budget keeps the worker hot (fewer fallbacks, more spin
	// instructions); a tight one converts the tail of every burst into
	// one fallback. Default 4×Batch.
	SpinBudget int
}

// SeriesConfig wires a ring to the windowed-metrics layer. The ring
// itself has no virtual clock — submissions happen "when the caller
// calls" — so the caller supplies one: the load engine's request clock,
// or a closure reading the enclave meter's accumulated cycles. Probe is
// structurally core.SampleProbe (internal/obs/series.Sampler satisfies
// it); Clock may be nil, which pins every sample to window zero.
type SeriesConfig struct {
	Probe core.SampleProbe
	Clock func() uint64
}

// now reads the wired clock (0 without one).
func (sc *SeriesConfig) now() uint64 {
	if sc.Clock == nil {
		return 0
	}
	return sc.Clock()
}

// WithDefaults resolves zero fields to the documented defaults and
// clamps Capacity to the wire-format bound.
func (c Config) WithDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.Capacity > MaxBatch {
		c.Capacity = MaxBatch
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.SpinBudget == 0 {
		c.SpinBudget = 4 * c.Batch
	}
	return c
}

// Stats is a ring's lifetime tally. All counters evolve on the call
// clock, so a deterministic call sequence yields deterministic stats.
type Stats struct {
	Calls           uint64 // switchless submissions (descriptor enqueued)
	Fallbacks       uint64 // synchronous-crossing fallbacks, total
	FullFallbacks   uint64 // … because the ring was full / slot too small
	ParkedFallbacks uint64 // … because the worker had parked (doorbell)
	Drains          uint64 // worker batch pickups (one amortized crossing each)
	Drained         uint64 // descriptors drained across all pickups
	Parks           uint64 // worker parks (spin budget expiry or Flush)
	Wakes           uint64 // worker wakes (doorbell fallbacks)
	MaxOccupancy    int    // high-water descriptor count
}

// Add returns the elementwise sum (max for MaxOccupancy), for summing
// stats across an application's rings.
func (s Stats) Add(o Stats) Stats {
	s.Calls += o.Calls
	s.Fallbacks += o.Fallbacks
	s.FullFallbacks += o.FullFallbacks
	s.ParkedFallbacks += o.ParkedFallbacks
	s.Drains += o.Drains
	s.Drained += o.Drained
	s.Parks += o.Parks
	s.Wakes += o.Wakes
	if o.MaxOccupancy > s.MaxOccupancy {
		s.MaxOccupancy = o.MaxOccupancy
	}
	return s
}

// verdict is the accounting decision for one submission.
type verdict uint8

const (
	// verdictEnqueue: switchless — the descriptor was enqueued.
	verdictEnqueue verdict = iota
	// verdictFallbackFull: ring full (or oversized descriptor) — the
	// caller performs the synchronous crossing.
	verdictFallbackFull
	// verdictFallbackParked: worker parked — the caller's synchronous
	// crossing doubles as the doorbell; the worker is hot again after.
	verdictFallbackParked
)

// ring is the shared state machine of both ring directions. The mutex
// covers accounting only — handler execution never runs under it (a
// drain on one ring may cascade into submissions on another).
//
// The worker starts parked (it does not exist until the first call
// launches it), so a ring's first submission is always a doorbell
// fallback: warmup is paid, never hidden.
type ring struct {
	cfg Config

	mu     sync.Mutex
	frame  []byte // pending drain frame: count header ‖ encoded descriptors
	occ    int    // descriptors in frame
	polls  int    // worker polls since its last drain
	parked bool
	stats  Stats
}

func newRing(cfg Config) ring {
	return ring{
		cfg:    cfg.WithDefaults(),
		frame:  make([]byte, batchHeaderLen),
		parked: true, // worker not launched yet; first call is the doorbell
	}
}

// submit advances the ring by one call and returns the accounting
// decision plus how many descriptors the worker drained as a
// consequence (0 if none) and whether it parked afterwards.
// Invariant: parked ⇒ occ == 0 (the worker drains before parking).
func (r *ring) submit(d Descriptor) (v verdict, drained int, parked bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc := r.cfg.Series
	if r.parked {
		r.parked = false
		r.polls = 0
		r.stats.Fallbacks++
		r.stats.ParkedFallbacks++
		r.stats.Wakes++
		if sc != nil {
			now := sc.now()
			sc.Probe.CountAt("xcall.fallbacks", now, 1)
			sc.Probe.CountAt("xcall.wakes", now, 1)
		}
		return verdictFallbackParked, 0, false, nil
	}
	if r.occ >= r.cfg.Capacity || !fits(d) {
		r.stats.Fallbacks++
		r.stats.FullFallbacks++
		if sc != nil {
			sc.Probe.CountAt("xcall.fallbacks", sc.now(), 1)
		}
		return verdictFallbackFull, 0, false, nil
	}
	r.frame = AppendDescriptor(r.frame, d)
	r.occ++
	r.polls++
	r.stats.Calls++
	if r.occ > r.stats.MaxOccupancy {
		r.stats.MaxOccupancy = r.occ
	}
	if sc != nil {
		now := sc.now()
		sc.Probe.CountAt("xcall.calls", now, 1)
		sc.Probe.GaugeAt("xcall.occ", now, uint64(r.occ))
	}
	if r.occ >= r.cfg.Batch {
		drained, err = r.drainLocked()
		return verdictEnqueue, drained, false, err
	}
	if r.polls > r.cfg.SpinBudget {
		// Spin budget expired: the worker drains the stragglers and
		// parks; the next submission pays the doorbell.
		drained, err = r.drainLocked()
		r.parked = true
		r.stats.Parks++
		if sc != nil {
			sc.Probe.CountAt("xcall.parks", sc.now(), 1)
		}
		return verdictEnqueue, drained, true, err
	}
	return verdictEnqueue, 0, false, nil
}

// drainLocked hands the pending frame to the worker: the frame is
// re-parsed through the checked decoder (the worker trusts nothing the
// host wrote) and the ring resets. Returns the descriptor count.
func (r *ring) drainLocked() (int, error) {
	putUint32(r.frame[:batchHeaderLen], uint32(r.occ))
	descs, err := UnmarshalBatch(r.frame)
	if err != nil {
		return 0, fmt.Errorf("xcall: drain rejected own frame: %w", err)
	}
	n := len(descs)
	r.frame = r.frame[:batchHeaderLen]
	r.occ = 0
	r.polls = 0
	r.stats.Drains++
	r.stats.Drained += uint64(n)
	if sc := r.cfg.Series; sc != nil {
		now := sc.now()
		sc.Probe.CountAt("xcall.drains", now, 1)
		sc.Probe.CountAt("xcall.drained", now, uint64(n))
	}
	return n, nil
}

// flush drains any pending descriptors and parks the worker (end of a
// burst: Flush at phase boundaries, or teardown). An empty flush only
// parks — it charges nothing.
func (r *ring) flush() (drained int, wasHot bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.occ > 0 {
		drained, err = r.drainLocked()
	}
	if !r.parked {
		r.parked = true
		r.stats.Parks++
		wasHot = true
		if sc := r.cfg.Series; sc != nil {
			sc.Probe.CountAt("xcall.parks", sc.now(), 1)
		}
	}
	return drained, wasHot, err
}

// snapshot returns the stats under the lock.
func (r *ring) snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// observe reports to a possibly-nil probe.
func observe(p core.Probe, kind string, n uint64) {
	if p != nil && n > 0 {
		p.Observe(kind, n)
	}
}

// chargeSwitchless accounts one enqueued descriptor and, if the
// submission triggered a drain, the amortized crossing plus per-
// descriptor dequeues; all on the meter the synchronous path would
// have charged.
func chargeSwitchless(m *core.Meter, p core.Probe, drained int, parked bool) {
	m.ChargeNormal(core.CostRingEnqueue + core.CostRingSpinPoll)
	observe(p, KindCall, 1)
	if drained > 0 {
		m.ChargeSGX(core.SGXInstRingDrain)
		m.ChargeNormal(uint64(drained) * core.CostRingDequeue)
		observe(p, KindDrain, uint64(drained))
	}
	if parked {
		observe(p, KindPark, 1)
	}
}

// chargeFallback reports fallback probes (the synchronous crossing
// itself is charged by whoever performs it).
func chargeFallback(p core.Probe, v verdict) {
	observe(p, KindFallback, 1)
	if v == verdictFallbackFull {
		observe(p, KindFallbackFull, 1)
	} else {
		observe(p, KindFallbackParked, 1)
		observe(p, KindWake, 1)
	}
}

// CallRing is the host→enclave direction: host threads enqueue ECALL
// descriptors, the in-enclave worker drains them. All accounting lands
// on the enclave meter, matching the synchronous Enclave.Call path it
// replaces.
type CallRing struct {
	ring
	enc *core.Enclave
}

// NewCallRing builds a call ring in front of enc.
func NewCallRing(enc *core.Enclave, cfg Config) *CallRing {
	return &CallRing{ring: newRing(cfg), enc: enc}
}

// Call submits one call. Switchless submissions charge ring ops (plus
// the amortized crossing on drains); fallbacks go through the ordinary
// Enclave.Call with its full EENTER/EEXIT pair.
//
// Results flow causally: the handler runs before Call returns in every
// case (only the *accounting* follows the ring protocol), so request/
// response code needs no restructuring to adopt the ring.
func (r *CallRing) Call(fn string, arg []byte) ([]byte, error) {
	v, drained, parked, err := r.submit(Descriptor{Kind: DescCall, Fn: fn, Arg: arg})
	if err != nil {
		return nil, err
	}
	p := r.enc.Platform().Probe()
	if v != verdictEnqueue {
		// Validate-then-charge: the synchronous call runs first, and the
		// fallback probes fire only if it succeeded — a rejected call must
		// not leave fallback observations behind.
		out, err := r.enc.Call(fn, arg)
		if err != nil {
			return nil, err
		}
		chargeFallback(p, v)
		return out, nil
	}
	chargeSwitchless(r.enc.Meter(), p, drained, parked)
	return r.enc.SwitchlessCall(fn, arg)
}

// Flush drains pending descriptors and parks the worker. Call it at
// phase boundaries so drained-but-unaccounted work cannot leak across
// a measurement snapshot. An empty flush is free.
func (r *CallRing) Flush() error {
	return chargeFlush(&r.ring, r.enc)
}

// Stats returns the ring's tally so far.
func (r *CallRing) Stats() Stats { return r.snapshot() }

// OCallRing is the enclave→host direction: in-enclave code posts host
// requests to the ring instead of paying EEXIT/ERESUME per OCALL. It
// implements core.Host so it can be bound directly as an enclave's
// host (with Enclave.SetSwitchlessOCalls to stop Env.OCall's own
// crossing charge) or invoked explicitly by enclave-side send paths.
// Accounting lands on the enclave meter, like the synchronous OCALL.
type OCallRing struct {
	ring
	enc  *core.Enclave
	host core.Host
}

// NewOCallRing builds an OCALL ring for enc in front of the untrusted
// host h.
func NewOCallRing(enc *core.Enclave, h core.Host, cfg Config) *OCallRing {
	return &OCallRing{ring: newRing(cfg), enc: enc, host: h}
}

// OCall submits one host request. Fallbacks pay the synchronous
// EEXIT/ERESUME pair here (the ring replaced the Env.OCall charge);
// switchless submissions pay ring ops and amortized drains. The host
// service always runs before OCall returns — responses stay causal.
func (r *OCallRing) OCall(service string, arg []byte) ([]byte, error) {
	v, drained, parked, err := r.submit(Descriptor{Kind: DescOCall, Fn: service, Arg: arg})
	if err != nil {
		return nil, err
	}
	m := r.enc.Meter()
	p := r.enc.Platform().Probe()
	if v != verdictEnqueue {
		// Validate-then-charge: the host service runs first; the
		// synchronous crossing and the fallback probes are charged only
		// when it succeeded, so a rejected request costs the enclave
		// nothing and fires no observations.
		out, err := r.host.OCall(service, arg)
		if err != nil {
			return nil, err
		}
		m.ChargeSGX(2) // EEXIT + ERESUME: the synchronous crossing
		observe(p, core.KindEEXIT, 1)
		observe(p, core.KindERESUME, 1)
		chargeFallback(p, v)
		return out, nil
	}
	chargeSwitchless(m, p, drained, parked)
	return r.host.OCall(service, arg)
}

// Flush drains pending descriptors and parks the worker (see
// CallRing.Flush).
func (r *OCallRing) Flush() error {
	return chargeFlush(&r.ring, r.enc)
}

// chargeFlush performs a flush and accounts it on the enclave meter: a
// non-empty final batch pays its amortized crossing and dequeues; an
// empty flush only parks (free).
func chargeFlush(r *ring, enc *core.Enclave) error {
	drained, wasHot, err := r.flush()
	if err != nil {
		return err
	}
	p := enc.Platform().Probe()
	if drained > 0 {
		m := enc.Meter()
		m.ChargeSGX(core.SGXInstRingDrain)
		m.ChargeNormal(uint64(drained) * core.CostRingDequeue)
		observe(p, KindDrain, uint64(drained))
	}
	if wasHot {
		observe(p, KindPark, 1)
	}
	return nil
}

// Stats returns the ring's tally so far.
func (r *OCallRing) Stats() Stats { return r.snapshot() }
