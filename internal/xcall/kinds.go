package xcall

import "sgxnet/internal/obs"

// Register the ring's probe kinds so a strict obs.Registry can vouch
// that every kind this package fires is documented. xcall may import
// obs for this (obs never imports xcall); core cannot, which is why the
// Probe interface lives there and the docs live here.
func init() {
	for _, k := range []struct{ name, doc string }{
		{KindCall, "switchless submission: descriptor enqueued on the ring"},
		{KindDrain, "descriptor picked up by the worker (per drained batch)"},
		{KindFallback, "submission fell back to a synchronous crossing"},
		{KindFallbackFull, "fallback cause: ring full or descriptor oversize"},
		{KindFallbackParked, "fallback cause: worker parked; call doubles as doorbell"},
		{KindPark, "worker parked after its spin budget expired"},
		{KindWake, "worker resumed on a doorbell fallback"},
	} {
		obs.RegisterKind(k.name, k.doc)
	}
}
