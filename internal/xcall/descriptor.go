// Package xcall implements switchless enclave calls: bounded
// shared-memory request rings between untrusted host threads and
// in-enclave worker loops, replacing the per-call EENTER/EEXIT pair
// with one amortized crossing per drained batch (HotCalls-style).
//
// Determinism: ring occupancy evolves on the call clock — every
// submission advances the ring's state machine by exactly one step
// under a mutex, with no wall clock and no real goroutine races in the
// cost model (like netsim's fault schedules, which evolve on the
// message clock). The same call sequence always produces the same
// drains, fallbacks, and meter charges.
package xcall

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Descriptor is the wire form of one queued call in a ring's shared
// memory: the slot an untrusted producer writes and the in-enclave
// worker parses at drain time. Like every cross-boundary format in
// this repo the decoder is length-checked and fuzzed — the worker must
// treat ring slots as attacker-controlled, because the host owns the
// shared memory.
type Descriptor struct {
	Kind byte   // DescCall or DescOCall
	Fn   string // entry point (DescCall) or host service (DescOCall)
	Arg  []byte
}

// Descriptor kinds.
const (
	// DescCall is a host→enclave call descriptor (ECALL direction).
	DescCall byte = 1
	// DescOCall is an enclave→host request descriptor (OCALL direction).
	DescOCall byte = 2
)

// Wire-format bounds. A drain hands the worker at most MaxBatch
// descriptors (rings clamp their configured capacity to this), a
// function name fits one length byte, and an argument is capped well
// above any cell/record/report this repo moves — oversized arguments
// don't fit a ring slot and fall back to a synchronous crossing
// instead (see ring.submit).
const (
	MaxBatch    = 1024
	MaxFnLen    = 255
	MaxArgBytes = 1 << 20
)

// descHeaderLen is kind(1) + fnLen(1) + argLen(4).
const descHeaderLen = 6

// batchHeaderLen is the descriptor count prefix of a batch frame.
const batchHeaderLen = 4

// ErrDescriptor is wrapped by all decode failures.
var ErrDescriptor = errors.New("xcall: bad descriptor")

// AppendDescriptor appends the canonical encoding of d to b:
// kind(1) ‖ fnLen(1) ‖ fn ‖ argLen(4) ‖ arg.
// The caller must have validated the bounds (the rings do, falling
// back to a synchronous call for anything that does not fit a slot).
func AppendDescriptor(b []byte, d Descriptor) []byte {
	b = append(b, d.Kind, byte(len(d.Fn)))
	b = append(b, d.Fn...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(d.Arg)))
	b = append(b, n[:]...)
	return append(b, d.Arg...)
}

// fits reports whether d is encodable within the wire-format bounds.
func fits(d Descriptor) bool {
	return (d.Kind == DescCall || d.Kind == DescOCall) &&
		len(d.Fn) <= MaxFnLen && len(d.Arg) <= MaxArgBytes
}

// decodeOne parses one descriptor from the front of b and returns the
// remainder.
func decodeOne(b []byte) (Descriptor, []byte, error) {
	if len(b) < descHeaderLen {
		return Descriptor{}, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrDescriptor, len(b))
	}
	kind := b[0]
	if kind != DescCall && kind != DescOCall {
		return Descriptor{}, nil, fmt.Errorf("%w: unknown kind %d", ErrDescriptor, kind)
	}
	fnLen := int(b[1])
	if len(b) < 2+fnLen+4 {
		return Descriptor{}, nil, fmt.Errorf("%w: truncated name", ErrDescriptor)
	}
	fn := string(b[2 : 2+fnLen])
	argLen := binary.BigEndian.Uint32(b[2+fnLen : 2+fnLen+4])
	if argLen > MaxArgBytes {
		return Descriptor{}, nil, fmt.Errorf("%w: argument %d bytes exceeds slot", ErrDescriptor, argLen)
	}
	rest := b[2+fnLen+4:]
	if uint64(len(rest)) < uint64(argLen) {
		return Descriptor{}, nil, fmt.Errorf("%w: truncated argument", ErrDescriptor)
	}
	var arg []byte
	if argLen > 0 {
		arg = rest[:argLen:argLen]
	}
	return Descriptor{Kind: kind, Fn: fn, Arg: arg}, rest[argLen:], nil
}

// MarshalBatch encodes a drain frame: count(4) ‖ descriptors. It
// returns an error if the batch or any descriptor exceeds the wire
// bounds — producers check fits() per slot, so a failure here is a
// programming error, not host input.
func MarshalBatch(descs []Descriptor) ([]byte, error) {
	if len(descs) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", ErrDescriptor, len(descs), MaxBatch)
	}
	b := make([]byte, batchHeaderLen, batchHeaderLen+len(descs)*descHeaderLen)
	binary.BigEndian.PutUint32(b, uint32(len(descs)))
	for _, d := range descs {
		if !fits(d) {
			return nil, fmt.Errorf("%w: descriptor %q out of bounds", ErrDescriptor, d.Fn)
		}
		b = AppendDescriptor(b, d)
	}
	return b, nil
}

// UnmarshalBatch parses a drain frame produced by MarshalBatch (or by
// a hostile host — every bound is checked). Trailing bytes after the
// last descriptor are rejected: the frame length is part of the
// handoff.
func UnmarshalBatch(b []byte) ([]Descriptor, error) {
	if len(b) < batchHeaderLen {
		return nil, fmt.Errorf("%w: truncated batch header", ErrDescriptor)
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", ErrDescriptor, n, MaxBatch)
	}
	rest := b[batchHeaderLen:]
	descs := make([]Descriptor, 0, n)
	for i := uint32(0); i < n; i++ {
		var (
			d   Descriptor
			err error
		)
		d, rest, err = decodeOne(rest)
		if err != nil {
			return nil, fmt.Errorf("descriptor %d: %w", i, err)
		}
		descs = append(descs, d)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrDescriptor, len(rest))
	}
	return descs, nil
}
