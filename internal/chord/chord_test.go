package chord

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func buildRing(t testing.TB, n int) (*Ring, []*Node) {
	t.Helper()
	r := NewRing()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := r.Join(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	r.StabilizeAll(4)
	return r, nodes
}

func TestSingleNodeRing(t *testing.T) {
	r, nodes := buildRing(t, 1)
	if err := r.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, _, err := nodes[0].Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestRingInvariantAfterJoins(t *testing.T) {
	for _, n := range []int{2, 5, 16, 40} {
		r, _ := buildRing(t, n)
		if err := r.CheckRing(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.Size() != n {
			t.Fatalf("n=%d: size %d", n, r.Size())
		}
	}
}

func TestPutGetAcrossNodes(t *testing.T) {
	_, nodes := buildRing(t, 20)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("val-%d", i))
		if _, err := nodes[i%len(nodes)].Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		// Read through a different node than wrote.
		v, _, err := nodes[(i+7)%len(nodes)].Get(key)
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %q: %q %v", key, v, err)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	_, nodes := buildRing(t, 5)
	if _, _, err := nodes[0].Get("never-stored"); err == nil {
		t.Fatal("missing key returned")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	_, nodes := buildRing(t, 64)
	total, count := 0, 0
	for i := 0; i < 200; i++ {
		_, hops, err := nodes[i%len(nodes)].FindSuccessor(HashKey(fmt.Sprintf("probe-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
		count++
	}
	avg := float64(total) / float64(count)
	bound := 2 * math.Log2(64)
	if avg > bound {
		t.Fatalf("average hops %.1f exceeds 2·log2(N)=%.1f", avg, bound)
	}
}

func TestLeaveHandsOffKeysAndHealsRing(t *testing.T) {
	r, nodes := buildRing(t, 10)
	for i := 0; i < 30; i++ {
		if _, err := nodes[0].Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.Leave(nodes[3])
	r.Leave(nodes[7])
	if err := r.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 8 {
		t.Fatalf("size %d", r.Size())
	}
	alive := nodes[0]
	for i := 0; i < 30; i++ {
		v, _, err := alive.Get(fmt.Sprintf("k%d", i))
		if err != nil || v[0] != byte(i) {
			t.Fatalf("key k%d lost after departures: %v", i, err)
		}
	}
	// Departed nodes refuse service.
	if _, _, err := nodes[3].FindSuccessor(1); err != ErrDead {
		t.Fatalf("dead node served lookup: %v", err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	r, _ := buildRing(t, 2)
	if _, err := r.Join("node-0"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestBetweenWrapAround(t *testing.T) {
	if !between(5, 100, 10) {
		t.Fatal("wrap-around interval broken")
	}
	if between(50, 100, 10) {
		t.Fatal("non-member accepted in wrap interval")
	}
	if !between(10, 5, 10) {
		t.Fatal("closed upper bound broken")
	}
	if betweenOpen(10, 5, 10) {
		t.Fatal("open upper bound broken")
	}
}

// Property: any join/leave sequence leaves a well-formed ring where every
// stored key is still retrievable from any live node.
func TestChurnProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing()
		var nodes []*Node
		seq := 0
		join := func() bool {
			nd, err := r.Join(fmt.Sprintf("n%d", seq))
			seq++
			if err != nil {
				return false
			}
			nodes = append(nodes, nd)
			return true
		}
		if !join() || !join() {
			return false
		}
		if _, err := nodes[0].Put("anchor", []byte("x")); err != nil {
			return false
		}
		for _, isJoin := range ops {
			if isJoin || len(nodes) <= 2 {
				if !join() {
					return false
				}
			} else {
				r.Leave(nodes[0])
				nodes = nodes[1:]
			}
		}
		r.StabilizeAll(4)
		if err := r.CheckRing(); err != nil {
			return false
		}
		v, _, err := nodes[len(nodes)-1].Get("anchor")
		return err == nil && string(v) == "x"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup64(b *testing.B) {
	_, nodes := buildRing(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].FindSuccessor(HashKey(fmt.Sprintf("p%d", i)))
	}
}
