// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001) — the membership substrate the paper proposes for a
// directory-less, fully SGX-enabled Tor: "Tor can utilize a distributed
// hash table to track the membership, similar to other peer-to-peer
// systems" (§3.2).
//
// The implementation is a faithful protocol simulation: nodes hold only
// successor/predecessor/finger state, lookups are routed hop by hop via
// closest-preceding-finger, and rings are maintained by the
// join/stabilize/fix-fingers/notify machinery of the paper. Inter-node
// calls are direct method invocations with per-lookup hop accounting (the
// quantity of interest), rather than wire messages.
package chord

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// M is the identifier-space width in bits.
const M = 64

// ID is a point on the Chord ring.
type ID uint64

// HashKey maps an arbitrary key to the ring.
func HashKey(key string) ID {
	sum := sha256.Sum256([]byte(key))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// between reports whether x ∈ (a, b] on the ring.
func between(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // wrap-around (or a == b: full circle)
}

// betweenOpen reports whether x ∈ (a, b) on the ring.
func betweenOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// Node is one Chord participant.
type Node struct {
	id   ID
	name string
	ring *Ring

	mu      sync.Mutex
	succ    *Node
	pred    *Node
	fingers [M]*Node
	data    map[ID][]byte
	alive   atomic.Bool
}

// ID returns the node's ring position.
func (n *Node) ID() ID { return n.id }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Alive reports whether the node is still in the ring. It is lock-free
// so it can be queried from inside any node's critical section (a node
// may be its own predecessor or finger).
func (n *Node) Alive() bool { return n.alive.Load() }

// Ring manages a set of Chord nodes (the "network").
type Ring struct {
	mu    sync.Mutex
	nodes map[ID]*Node
}

// NewRing creates an empty ring.
func NewRing() *Ring {
	return &Ring{nodes: make(map[ID]*Node)}
}

// ErrEmpty is returned by operations on an empty ring.
var ErrEmpty = errors.New("chord: empty ring")

// ErrDead is returned when operating through a departed node.
var ErrDead = errors.New("chord: node has left the ring")

// Size returns the number of live nodes.
func (r *Ring) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Join adds a node named name, bootstrapping through any existing node,
// and runs enough stabilization for the ring to absorb it.
func (r *Ring) Join(name string) (*Node, error) {
	id := HashKey(name)
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("chord: id collision for %q", name)
	}
	n := &Node{id: id, name: name, ring: r, data: make(map[ID][]byte)}
	n.alive.Store(true)
	var boot *Node
	for _, b := range r.nodes {
		boot = b
		break
	}
	r.nodes[id] = n
	r.mu.Unlock()

	if boot == nil {
		n.mu.Lock()
		n.succ, n.pred = n, n
		for i := range n.fingers {
			n.fingers[i] = n
		}
		n.mu.Unlock()
		return n, nil
	}
	succ, _, err := boot.FindSuccessor(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.succ = succ
	n.pred = nil
	for i := range n.fingers {
		n.fingers[i] = succ
	}
	n.mu.Unlock()
	// Light local repair: the new node and its ring neighborhood
	// stabilize immediately; global finger refresh happens on the next
	// periodic StabilizeAll, as in a real deployment.
	n.stabilize()
	succ.stabilize()
	if p := r.successorOnRing(n.id); p != nil {
		p.stabilize()
	}
	for _, m := range r.sortedNodes() {
		m.stabilize()
	}
	n.fixFingers()
	// Key handoff: the new node takes over keys in (pred(n), n] from its
	// successor, as in the Chord paper's join procedure.
	nodes := r.sortedNodes()
	var predID ID = n.id
	for i, m := range nodes {
		if m == n {
			predID = nodes[(i+len(nodes)-1)%len(nodes)].id
			break
		}
	}
	if succNow := r.successorOnRing(n.id + 1); succNow != nil && succNow != n && predID != n.id {
		succNow.mu.Lock()
		moved := make(map[ID][]byte)
		for k, v := range succNow.data {
			if between(k, predID, n.id) {
				moved[k] = v
				delete(succNow.data, k)
			}
		}
		succNow.mu.Unlock()
		n.mu.Lock()
		for k, v := range moved {
			n.data[k] = v
		}
		n.mu.Unlock()
	}
	return n, nil
}

// Leave removes a node (graceful departure: keys hand off to the
// successor) and re-stabilizes.
func (r *Ring) Leave(n *Node) {
	if !n.alive.CompareAndSwap(true, false) {
		return
	}
	n.mu.Lock()
	succ := n.succ
	keys := n.data
	n.data = map[ID][]byte{}
	n.mu.Unlock()

	r.mu.Lock()
	delete(r.nodes, n.id)
	r.mu.Unlock()

	if succ == nil || succ == n || !succ.Alive() {
		succ = r.successorOnRing(n.id + 1)
	}
	if succ != nil && succ.Alive() {
		succ.mu.Lock()
		for k, v := range keys {
			succ.data[k] = v
		}
		succ.mu.Unlock()
	}
	for _, m := range r.sortedNodes() {
		m.stabilize()
	}
}

// sortedNodes returns live nodes in ring order.
func (r *Ring) sortedNodes() []*Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// StabilizeAll runs `rounds` of stabilize on every node followed by one
// finger-table refresh — the periodic maintenance a deployment runs on
// timers.
func (r *Ring) StabilizeAll(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, n := range r.sortedNodes() {
			n.stabilize()
		}
	}
	for _, n := range r.sortedNodes() {
		n.fixFingers()
	}
}

// successorOnRing computes the true successor (used by stabilization to
// repair pointers after failures; a real deployment uses successor
// lists — this models the same recovery capability).
func (r *Ring) successorOnRing(id ID) *Node {
	nodes := r.sortedNodes()
	if len(nodes) == 0 {
		return nil
	}
	for _, n := range nodes {
		if n.id >= id {
			return n
		}
	}
	return nodes[0]
}

// stabilize implements Chord's stabilize(): ask the successor for its
// predecessor and adopt it if closer; then notify.
func (n *Node) stabilize() {
	if !n.Alive() {
		return
	}
	n.mu.Lock()
	succ := n.succ
	n.mu.Unlock()

	if succ == nil || !succ.Alive() {
		succ = n.ring.successorOnRing(n.id + 1)
		if succ == nil {
			return
		}
		n.mu.Lock()
		n.succ = succ
		n.mu.Unlock()
	}
	succ.mu.Lock()
	x := succ.pred
	succ.mu.Unlock()
	if x != nil && x.Alive() && x != n && betweenOpen(x.id, n.id, succ.id) {
		n.mu.Lock()
		n.succ = x
		n.mu.Unlock()
		succ = x
	}
	succ.notify(n)
}

// notify implements Chord's notify(): n' thinks it might be our
// predecessor.
func (n *Node) notify(cand *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred == nil || !n.pred.Alive() || betweenOpen(cand.id, n.pred.id, n.id) {
		if cand != n {
			n.pred = cand
		}
	}
}

// fixFingers refreshes the finger table.
func (n *Node) fixFingers() {
	if !n.Alive() {
		return
	}
	for i := 0; i < M; i++ {
		start := n.id + (ID(1) << uint(i))
		f, _, err := n.FindSuccessor(start)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.fingers[i] = f
		n.mu.Unlock()
	}
}

// closestPrecedingFinger returns the finger closest to, and preceding,
// id.
func (n *Node) closestPrecedingFinger(id ID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := M - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f != nil && f.Alive() && betweenOpen(f.id, n.id, id) {
			return f
		}
	}
	return n
}

// FindSuccessor resolves the node responsible for id, returning it and
// the number of routing hops taken — O(log N) with high probability.
func (n *Node) FindSuccessor(id ID) (*Node, int, error) {
	if !n.Alive() {
		return nil, 0, ErrDead
	}
	cur := n
	hops := 0
	for limit := 0; limit < 4*M; limit++ {
		cur.mu.Lock()
		succ := cur.succ
		cur.mu.Unlock()
		if succ == nil {
			return nil, hops, ErrEmpty
		}
		if !succ.Alive() {
			succ = n.ring.successorOnRing(cur.id + 1)
			if succ == nil {
				return nil, hops, ErrEmpty
			}
			cur.mu.Lock()
			cur.succ = succ
			cur.mu.Unlock()
		}
		if between(id, cur.id, succ.id) {
			return succ, hops, nil
		}
		next := cur.closestPrecedingFinger(id)
		if next == cur {
			next = succ
		}
		cur = next
		hops++
	}
	return nil, hops, fmt.Errorf("chord: lookup for %d did not converge", id)
}

// Put stores a value at the node responsible for key.
func (n *Node) Put(key string, value []byte) (int, error) {
	id := HashKey(key)
	owner, hops, err := n.FindSuccessor(id)
	if err != nil {
		return hops, err
	}
	owner.mu.Lock()
	owner.data[id] = append([]byte(nil), value...)
	owner.mu.Unlock()
	return hops, nil
}

// Get retrieves a value by key.
func (n *Node) Get(key string) ([]byte, int, error) {
	id := HashKey(key)
	owner, hops, err := n.FindSuccessor(id)
	if err != nil {
		return nil, hops, err
	}
	owner.mu.Lock()
	v, ok := owner.data[id]
	owner.mu.Unlock()
	if !ok {
		return nil, hops, fmt.Errorf("chord: key %q not found", key)
	}
	return append([]byte(nil), v...), hops, nil
}

// Successor returns the node's current successor (diagnostics).
func (n *Node) Successor() *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// SuccessorOf returns the live node responsible for id (the ring-level
// oracle view; applications holding only a node handle use
// Node.FindSuccessor).
func (r *Ring) SuccessorOf(id ID) *Node { return r.successorOnRing(id) }

// CheckRing verifies the ring invariant: following successor pointers
// from the lowest node visits every live node exactly once, in ID order.
func (r *Ring) CheckRing() error {
	nodes := r.sortedNodes()
	if len(nodes) == 0 {
		return nil
	}
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)]
		got := n.Successor()
		if got != want {
			return fmt.Errorf("chord: %s's successor is %v, want %s", n.name, got.name, want.name)
		}
	}
	return nil
}
