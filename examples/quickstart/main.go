// Quickstart: two SGX-enabled hosts, a remote attestation with
// Diffie-Hellman channel bootstrap, and one sealed message — the
// building block every application in the paper starts from (§2.2).
package main

import (
	"fmt"
	"log"

	"sgxnet"
)

func main() {
	log.SetFlags(0)

	// A simulated world: one architectural ("Intel") signer provisions
	// the quoting enclaves on every SGX host.
	net := sgxnet.NewNetwork()
	arch, err := sgxnet.NewArchSigner()
	if err != nil {
		log.Fatal(err)
	}
	serverHost, err := sgxnet.NewSGXHost(net, "server", arch)
	if err != nil {
		log.Fatal(err)
	}
	clientHost, err := sgxnet.NewSGXHost(net, "client", arch)
	if err != nil {
		log.Fatal(err)
	}

	// The server enclave: an application program with the
	// attestation-target role mounted, plus one handler that answers
	// sealed requests over the attested channel.
	signer, err := sgxnet.NewSigner()
	if err != nil {
		log.Fatal(err)
	}
	tState := sgxnet.NewTargetState()
	serverProg := &sgxnet.Program{
		Name:    "quickstart-server",
		Version: "1.0",
		Handlers: map[string]sgxnet.Handler{
			"greet": func(env *sgxnet.Env, arg []byte) ([]byte, error) {
				// arg: connID(4) ‖ sealed request
				cid := uint32(arg[0]) | uint32(arg[1])<<8 | uint32(arg[2])<<16 | uint32(arg[3])<<24
				req, err := tState.Open(env.Meter(), cid, arg[4:])
				if err != nil {
					return nil, err
				}
				return tState.Seal(env.Meter(), cid, append([]byte("hello, "), req...))
			},
		},
	}
	sgxnet.AddTargetHandlers(serverProg, tState)
	server, err := serverHost.Platform().Launch(serverProg, signer)
	if err != nil {
		log.Fatal(err)
	}
	sShim := sgxnet.NewMsgShim(serverHost, server.Meter())
	var sHost sgxnet.MultiHost
	sHost.Mount("msg.", sShim)
	server.BindHost(&sHost)

	// The client enclave: challenger role, pinning the server's
	// community-verified measurement (the deterministic-build assumption
	// of §4 — anyone can compute it from the source).
	cState := sgxnet.NewChallengerState(sgxnet.AttestPolicy{
		AllowedEnclaves: []sgxnet.Measurement{sgxnet.MeasureProgram(serverProg)},
		RejectDebug:     true,
	})
	clientProg := &sgxnet.Program{Name: "quickstart-client", Version: "1.0",
		Handlers: map[string]sgxnet.Handler{}}
	sgxnet.AddChallengerHandlers(clientProg, cState)
	client, err := clientHost.Platform().Launch(clientProg, signer)
	if err != nil {
		log.Fatal(err)
	}
	cShim := sgxnet.NewMsgShim(clientHost, client.Meter())
	var cHost sgxnet.MultiHost
	cHost.Mount("msg.", cShim)
	client.BindHost(&cHost)

	// Wire up: the server accepts, attests as target, then serves sealed
	// requests.
	l, err := serverHost.Listen("greeter")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		cid, err := sgxnet.Respond(server, sShim, serverHost, conn)
		if err != nil {
			return
		}
		for {
			sealed, err := conn.Recv()
			if err != nil {
				return
			}
			arg := append([]byte{byte(cid), byte(cid >> 8), byte(cid >> 16), byte(cid >> 24)}, sealed...)
			reply, err := server.Call("greet", arg)
			if err != nil {
				return
			}
			if err := conn.Send(reply); err != nil {
				return
			}
		}
	}()

	// The client dials, attests the server (with DH → secure channel),
	// and sends a sealed greeting.
	conn, err := clientHost.Dial("server", "greeter")
	if err != nil {
		log.Fatal(err)
	}
	cid, identity, err := sgxnet.Challenge(client, cShim, conn, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested server enclave: MRENCLAVE=%x…\n", identity.MREnclave[:8])

	sess, _ := cState.Session(cid)
	sealed, err := sess.Channel.Seal(client.Meter(), []byte("enclave world"))
	if err != nil {
		log.Fatal(err)
	}
	replySealed, err := conn.Request(sealed)
	if err != nil {
		log.Fatal(err)
	}
	reply, err := sess.Channel.Open(client.Meter(), replySealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed reply: %q\n", reply)
	fmt.Printf("instruction bill — client: %v; server: %v\n",
		client.Meter().Snapshot(), server.Meter().Snapshot())
}
