// Toranon: the §3.2 scenario — the same anonymous fetch attempted in
// today's Tor and in the fully SGX-enabled design, with a malicious
// volunteer exit in the mix. In the baseline the tampering succeeds; in
// the SGX deployments the tampered build never makes it into a circuit.
package main

import (
	"fmt"
	"log"
	"strings"

	"sgxnet/internal/tor"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Phase 0: today's Tor (baseline) ===")
	baseline()

	fmt.Println()
	fmt.Println("=== Phase 2: incremental SGX ORs (attestation-based admission) ===")
	incremental()

	fmt.Println()
	fmt.Println("=== Phase 3: fully SGX-enabled (DHT membership, no authorities) ===")
	full()
}

func baseline() {
	tn, err := tor.Deploy(tor.NetworkConfig{Mode: tor.ModeBaseline, Authorities: 3, Relays: 3, Exits: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// A malicious volunteer: manual admission waves it through.
	evil, err := tn.AddOR(tor.ORConfig{Name: "bad-exit", Exit: true, Behavior: tor.BehaveTamperExit})
	if err != nil {
		log.Fatal(err)
	}
	client, err := tn.NewClient("alice", 5)
	if err != nil {
		log.Fatal(err)
	}
	consensus, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consensus admits %d relays, including the malicious volunteer\n", len(consensus))
	var path []tor.Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	path = append(path, evil.Descriptor())
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /news"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice fetched %q", resp)
	if strings.HasPrefix(string(resp), "EVIL:") {
		fmt.Print("  ← silently modified by the exit")
	}
	fmt.Println()
}

func incremental() {
	tn, err := tor.Deploy(tor.NetworkConfig{Mode: tor.ModeSGXORs, Authorities: 3, Relays: 3, Exits: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tn.AddOR(tor.ORConfig{Name: "bad-exit", Exit: true, SGX: true, Behavior: tor.BehaveTamperExit}); err != nil {
		fmt.Printf("malicious build rejected at admission: measurement check failed\n")
	} else {
		log.Fatal("tampered OR admitted")
	}
	client, err := tn.NewClient("alice", 5)
	if err != nil {
		log.Fatal(err)
	}
	consensus, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	path, err := client.PickPath(consensus, 3)
	if err != nil {
		log.Fatal(err)
	}
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /news"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice fetched %q through verified relays only\n", resp)
}

func full() {
	tn, err := tor.Deploy(tor.NetworkConfig{Mode: tor.ModeSGXFull, Relays: 4, Exits: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no directory authorities; %d-node Chord ring tracks membership\n", tn.Ring.Size())
	client, err := tn.NewClient("alice", 9)
	if err != nil {
		log.Fatal(err)
	}
	found, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice walked the DHT and attested %d relays directly (hardware-verified membership)\n", len(found))
	path, err := client.PickPath(found, 3)
	if err != nil {
		log.Fatal(err)
	}
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /news"))
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, d := range path {
		names = append(names, d.Name)
	}
	fmt.Printf("circuit %s → %q\n", strings.Join(names, " → "), resp)
}
