// Middlebox: the §3.3 enterprise scenario — TLS traffic flows through an
// in-path middlebox that cannot read it, until the endpoint attests the
// middlebox enclave and provisions its session keys, after which the
// enclave performs DPI with cryptographic assurance about what code does
// the inspecting.
//
// This is the single-function case. internal/nfchain (DESIGN.md §16)
// generalizes it into composable chains of enclave-hosted stages —
// classify, filter, DPI, NAT, re-encrypt — routed by an in-enclave rule
// table with hop admission amortized over one RA-TLS verifier; run
// `sgxnet-tables -chain-sweep` for the depth × batch × rule-set-size
// economics of chaining.
package main

import (
	"fmt"
	"log"

	"sgxnet/internal/eval"
	"sgxnet/internal/middlebox"
)

func main() {
	log.SetFlags(0)

	rig, err := eval.NewMboxRig(1)
	if err != nil {
		log.Fatal(err)
	}
	mb := rig.Mboxes[0]
	fmt.Printf("client → %s → server: TLS established through the middlebox\n", mb.Name)

	// Phase 1: keys not provisioned — the middlebox is blind.
	if err := rig.Session.Send([]byte("quarterly numbers attached, no malware here")); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.Session.Recv(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before provisioning: middlebox saw %d alerts (it forwards ciphertext it cannot open)\n",
		len(mb.Alerts()))

	// Phase 2: attest + provision over the secure channel.
	n, err := rig.ProvisionAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested the middlebox enclave and provisioned session keys (%d attestation — Table 3)\n", n)

	// Phase 3: inspection catches the exfiltration attempt.
	if err := rig.Session.Send([]byte("begin exfiltrate of customer db")); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.Session.Recv(); err != nil {
		log.Fatal(err)
	}
	for _, a := range mb.Alerts() {
		fmt.Printf("DPI alert: pattern %q at offset %d (flow %d)\n", a.Match.Pattern, a.Match.Offset, a.Flow)
	}

	// Phase 4: a tampered build asks for keys and is refused.
	rogue, err := rig.AddTamperedMbox("rogue")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := middlebox.Provision(rig.Endpoint, rig.EpShim, rig.Client,
		rogue.Host.Name(), "client", rig.Session.ExportKeys()); err != nil {
		fmt.Printf("rogue middlebox refused: %v\n", err)
	} else {
		log.Fatal("rogue middlebox obtained keys")
	}
}
