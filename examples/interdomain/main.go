// Interdomain: the §3.1 scenario the paper's intro motivates — ISPs want
// centralized SDN route computation without disclosing policies. Twelve
// ASes upload their private policies to an attested inter-domain
// controller, receive their routes, and verify a business promise
// through the predicate module, all without any policy leaving an
// enclave.
package main

import (
	"fmt"
	"log"

	"sgxnet/internal/bgp"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/topo"
)

func main() {
	log.SetFlags(0)

	// Twelve ASes with realistic business relationships.
	tp, err := topo.Random(topo.Config{N: 12, Seed: 2026, PrefJitter: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS graph: %d ASes, %d links\n", tp.N(), tp.Links())

	report, err := sdnctl.RunSGXWithPredicates(tp, func(_ *sdnctl.Controller, locals []*sdnctl.ASLocal) error {
		// AS2 has promised AS3 that its selected routes never transit
		// AS1 (say, a sanctioned network). Both register the identical
		// predicate; only then will the controller evaluate it.
		pred := sdnctl.Predicate{ID: "as2-avoids-as1", ASa: 2, ASb: 3, Kind: sdnctl.PredAvoids, Arg: 1}
		for _, asn := range []int{2, 3} {
			resp, err := locals[asn].Do(&sdnctl.Request{Register: &pred})
			if err != nil || resp.Err != "" {
				return fmt.Errorf("register by AS%d: %v %s", asn, err, resp.Err)
			}
		}
		resp, err := locals[3].Do(&sdnctl.Request{Verify: pred.ID})
		if err != nil || resp.Verdict == nil {
			return fmt.Errorf("verify: %v %+v", err, resp)
		}
		fmt.Printf("predicate %q → holds=%v (one bit disclosed, nothing else)\n",
			pred.ID, resp.Verdict.Holds)

		// An AS that is not a party cannot even ask.
		resp, err = locals[7].Do(&sdnctl.Request{Verify: pred.ID})
		if err != nil {
			return err
		}
		fmt.Printf("AS7 (non-party) verification attempt: %q\n", resp.Err)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("controller computed routes for all ASes: %d route updates in %d rounds\n",
		report.Stats.Updates, report.Stats.Rounds)
	fmt.Printf("%d remote attestations (Table 3: one per AS controller)\n", report.Attestations)
	fmt.Printf("inter-domain controller: %d normal + %d SGX(U) instructions (steady state)\n",
		report.InterDomain.Normal, report.InterDomain.SGXU)

	// Cross-check against the distributed path-vector oracle — the role
	// GNS3 plays in the paper's §5.
	oracle, _ := bgp.SimulateDistributed(tp, 99)
	if !bgp.RIBsEqual(report.RIBs, oracle) {
		log.Fatal("controller routes diverge from distributed BGP")
	}
	fmt.Println("controller output matches the distributed BGP simulation (GNS3-style check)")
	if !bgp.AllValleyFree(tp, report.RIBs) {
		log.Fatal("valley detected")
	}
	fmt.Println("all routes valley-free and loop-free")
}
