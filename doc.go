// Package sgxnet is a Go reproduction of "A First Step Towards
// Leveraging Commodity Trusted Execution Environments for Network
// Applications" (HotNets 2015): a software SGX platform (enclaves, EPC,
// measurement, local and remote attestation with a quoting enclave, and
// an OpenSGX-style instruction-accounting model), plus the paper's three
// network applications built on it —
//
//   - SDN-based inter-domain routing with policy privacy and predicate
//     verification (§3.1), against a native baseline and an SMPC baseline;
//   - a Tor-style anonymity network with the paper's three SGX deployment
//     phases, including a Chord-DHT membership mode without directory
//     authorities (§3.2);
//   - TLS-aware middleboxes that receive session keys over attested
//     channels and run DPI inside enclaves (§3.3).
//
// The package itself is the high-level facade: simulated networks, SGX
// hosts, enclave launch, and remote attestation. The subsystems live in
// internal/ packages (core, attest, netsim, topo, bgp, sdnctl, tor,
// chord, tlslite, middlebox, smpc, eval); the evaluation harness in
// internal/eval regenerates every table and figure of the paper's §5.
//
// # Quickstart
//
//	net := sgxnet.NewNetwork()
//	arch, _ := sgxnet.NewArchSigner()
//	hostA, _ := sgxnet.NewSGXHost(net, "alice", arch)
//	hostB, _ := sgxnet.NewSGXHost(net, "bob", arch)
//	// launch enclaves, attest, exchange sealed messages — see
//	// examples/quickstart.
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-vs-measured record.
package sgxnet
